package workload

import (
	"bytes"
	"context"
	"math"
	"runtime"
	"strings"
	"testing"

	"anonconsensus/internal/env"
)

// testSpec is a small mixed workload exercising both algorithms, a faulty
// class, admission control and queueing pressure.
func testSpec() Spec {
	return Spec{
		Seed:    7,
		Ops:     160,
		Rate:    400,
		Arrival: Poisson,
		Classes: []Class{
			{Name: "es-bulk", Weight: 3, Alg: ES, N: 4, GST: 2},
			{Name: "ess-interactive", Weight: 2, Alg: ESS, N: 3, GST: 2, StableSource: 1},
			{Name: "es-lossy", Weight: 1, Alg: ES, N: 4, GST: 2, Scenario: &env.Scenario{LossPct: 10}},
		},
		Servers:    4,
		QueueDepth: 8,
		AdmitRate:  350,
		AdmitBurst: 16,
	}
}

func mustRun(t *testing.T, spec Spec) *Result {
	t.Helper()
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGenerateDeterministicAndSeeded(t *testing.T) {
	for _, kind := range []ArrivalKind{Poisson, Gamma, Weibull} {
		spec := testSpec()
		spec.Arrival = kind
		a, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: arrival %d differs between identical generations: %+v vs %+v", kind, i, a[i], b[i])
			}
			if i > 0 && a[i].TimeUS < a[i-1].TimeUS {
				t.Fatalf("%v: arrival %d goes back in time", kind, i)
			}
		}
		spec.Seed = 8
		c, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		same := 0
		for i := range a {
			if a[i].TimeUS == c[i].TimeUS {
				same++
			}
		}
		if same == len(a) {
			t.Fatalf("%v: different seeds produced identical schedules", kind)
		}
	}
}

// TestGenerateRate pins each arrival process to its configured mean rate:
// over many draws the empirical rate must be within 15% of Spec.Rate, and
// the class mix within 15% of its weights.
func TestGenerateRate(t *testing.T) {
	for _, kind := range []ArrivalKind{Poisson, Gamma, Weibull} {
		for _, shape := range []float64{0.5, 1, 2} {
			if kind == Poisson && shape != 2 {
				continue
			}
			spec := testSpec()
			spec.Arrival, spec.Shape, spec.Ops, spec.Rate = kind, shape, 6000, 500
			arr, err := Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			last := arr[len(arr)-1].TimeUS
			gotRate := float64(len(arr)) / (float64(last) / 1e6)
			if math.Abs(gotRate-spec.Rate)/spec.Rate > 0.15 {
				t.Errorf("%v shape %v: empirical rate %.1f, want ≈ %v", kind, shape, gotRate, spec.Rate)
			}
			counts := make([]int, len(spec.Classes))
			for _, a := range arr {
				counts[a.Class]++
			}
			total := 3 + 2 + 1
			for i, c := range spec.Classes {
				want := float64(spec.Ops) * float64(c.Weight) / float64(total)
				if math.Abs(float64(counts[i])-want)/want > 0.15 {
					t.Errorf("%v shape %v: class %s got %d arrivals, want ≈ %.0f", kind, shape, c.Name, counts[i], want)
				}
			}
		}
	}
}

// TestRunByteIdenticalAcrossParallelism is the workload plane's
// determinism pin: trace and rendered report are pure functions of the
// spec at parallelism 1, 4 and NumCPU.
func TestRunByteIdenticalAcrossParallelism(t *testing.T) {
	render := func(par int) (string, string) {
		spec := testSpec()
		spec.Parallelism = par
		res := mustRun(t, spec)
		var buf bytes.Buffer
		if err := res.Report().Render(&buf); err != nil {
			t.Fatal(err)
		}
		return res.EncodeTrace(), buf.String()
	}
	wantTrace, wantReport := render(1)
	for _, par := range []int{4, runtime.NumCPU()} {
		gotTrace, gotReport := render(par)
		if gotTrace != wantTrace {
			t.Errorf("trace diverged between parallelism 1 and %d", par)
		}
		if gotReport != wantReport {
			t.Errorf("report diverged between parallelism 1 and %d:\n%s\nvs\n%s", par, wantReport, gotReport)
		}
	}
}

func TestTraceFixedPointAndReplay(t *testing.T) {
	res := mustRun(t, testSpec())
	enc := res.EncodeTrace()
	parsed, err := ParseTrace(enc)
	if err != nil {
		t.Fatalf("ParseTrace: %v\ntrace:\n%s", err, enc)
	}
	if got := parsed.EncodeTrace(); got != enc {
		t.Errorf("Encode/Parse is not a fixed point")
	}
	replayed, err := Replay(enc)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if got := replayed.EncodeTrace(); got != enc {
		t.Errorf("replay did not reproduce the trace")
	}
	// The workload must actually exercise the interesting paths, or the
	// assertions above are vacuous.
	rep := res.Report()
	if rep.Total.Done == 0 || rep.Total.ShedAdmission+rep.Total.ShedQueue == 0 {
		t.Fatalf("test spec produced no mix of served and shed proposals: %+v", rep.Total)
	}
	if rep.Total.P50US <= 0 || rep.Total.P99US < rep.Total.P95US || rep.Total.P95US < rep.Total.P50US {
		t.Errorf("implausible percentiles: %+v", rep.Total)
	}
}

// TestReplayRejectsTamperedTrace pins that replay cross-checks the
// recorded outcomes against the queueing model.
func TestReplayRejectsTamperedTrace(t *testing.T) {
	res := mustRun(t, testSpec())
	enc := res.EncodeTrace()
	tampered := strings.Replace(enc, "outcome=shed-queue", "outcome=ok", 1)
	if tampered == enc {
		tampered = strings.Replace(enc, "outcome=shed-admit", "outcome=ok", 1)
	}
	if tampered == enc {
		t.Fatal("test spec shed nothing to tamper with")
	}
	if _, err := Replay(tampered); err == nil {
		t.Error("replay accepted a trace whose outcome contradicts its schedule")
	}
}

func TestQueueModelHandComputed(t *testing.T) {
	// One server, 10ms service, queue depth 1: the op arriving while one
	// is in service and one waits must be shed; the waiter's wait time is
	// the remaining service.
	spec := Spec{Servers: 1, QueueDepth: 1, RoundUS: 1}
	mk := func(tus, svc int64) Record {
		return Record{Arrival: Arrival{TimeUS: tus}, SvcUS: svc}
	}
	recs := []Record{mk(0, 10000), mk(1000, 10000), mk(2000, 10000), mk(11000, 10000)}
	applyQueueing(spec, recs)
	type want struct {
		out  Outcome
		wait int64
	}
	wants := []want{{OK, 0}, {OK, 9000}, {ShedQueue, 0}, {OK, 9000}}
	for i, w := range wants {
		if recs[i].Outcome != w.out || recs[i].WaitUS != w.wait {
			t.Errorf("op %d: got (%v, wait %d), want (%v, wait %d)", i, recs[i].Outcome, recs[i].WaitUS, w.out, w.wait)
		}
	}
	if recs[2].Rounds != 0 || recs[2].SvcUS != 0 {
		t.Errorf("shed op kept run-derived fields: %+v", recs[2])
	}
}

func TestAdmissionModelHandComputed(t *testing.T) {
	// 1 token/sec, burst 1: the second proposal 100µs later finds an
	// empty bucket; one a full second later is admitted again.
	spec := Spec{AdmitRate: 1, AdmitBurst: 1}
	recs := []Record{
		{Arrival: Arrival{TimeUS: 0}},
		{Arrival: Arrival{TimeUS: 100}},
		{Arrival: Arrival{TimeUS: 1_000_100}},
	}
	admitted := applyAdmission(spec, recs)
	if len(admitted) != 2 || admitted[0] != 0 || admitted[1] != 2 {
		t.Fatalf("admitted = %v, want [0 2]", admitted)
	}
	if recs[1].Outcome != ShedAdmission {
		t.Errorf("op 1 outcome = %v, want shed-admit", recs[1].Outcome)
	}
}

func TestSpecValidation(t *testing.T) {
	base := testSpec()
	bad := []func(*Spec){
		func(s *Spec) { s.Ops = 0 },
		func(s *Spec) { s.Rate = 0 },
		func(s *Spec) { s.Rate = math.Inf(1) },
		func(s *Spec) { s.Arrival = ArrivalKind(9) },
		func(s *Spec) { s.Shape = -1 },
		func(s *Spec) { s.Classes = nil },
		func(s *Spec) { s.Classes[0].Name = "" },
		func(s *Spec) { s.Classes[0].Name = "has space" },
		func(s *Spec) { s.Classes[0].Weight = 0 },
		func(s *Spec) { s.Classes[0].N = 0 },
		func(s *Spec) { s.Classes[1].Name = s.Classes[0].Name },
		func(s *Spec) { s.Classes[1].StableSource = 99 },
		func(s *Spec) { s.AdmitRate = 10; s.AdmitBurst = 0 },
		func(s *Spec) { s.Parallelism = -1 },
		func(s *Spec) { s.RoundUS = -1 },
		func(s *Spec) { s.Classes[0].Scenario = &env.Scenario{LossPct: 300} },
	}
	for i, mutate := range bad {
		spec := base
		spec.Classes = append([]Class(nil), base.Classes...)
		mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("mutation %d: invalid spec accepted", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base spec rejected: %v", err)
	}
}

func TestFairness(t *testing.T) {
	classes := []ClassStats{
		{Name: "a", Weight: 1, Done: 50},
		{Name: "b", Weight: 1, Done: 50},
	}
	if j := jain(classes); math.Abs(j-1) > 1e-9 {
		t.Errorf("perfectly fair split: jain = %v, want 1", j)
	}
	classes[1].Done = 0
	if j := jain(classes); math.Abs(j-0.5) > 1e-9 {
		t.Errorf("one-class starvation: jain = %v, want 0.5", j)
	}
}

func TestLiveResultTraceRoundTrip(t *testing.T) {
	spec := testSpec()
	spec.Ops = 3
	recs := []Record{
		{Arrival: Arrival{TimeUS: 100, Class: 0, Seed: 1}, Outcome: OK, WaitUS: 50, SvcUS: 2000, LatUS: 2050, Rounds: 5, DecidedProcs: 4, Agreed: true},
		{Arrival: Arrival{TimeUS: 200, Class: 1, Seed: 2}, Outcome: ShedAdmission},
		{Arrival: Arrival{TimeUS: 300, Class: 2, Seed: 3}, Outcome: Errored},
	}
	res := LiveResult(spec, recs)
	enc := res.EncodeTrace()
	back, err := Replay(enc)
	if err != nil {
		t.Fatalf("Replay(live trace): %v", err)
	}
	if back.Mode != Live {
		t.Errorf("mode = %v, want live", back.Mode)
	}
	if got := back.EncodeTrace(); got != enc {
		t.Errorf("live trace round trip diverged:\n%s\nvs\n%s", enc, got)
	}
	rep := back.Report()
	if rep.Total.Done != 1 || rep.Total.ShedAdmission != 1 || rep.Total.Errored != 1 {
		t.Errorf("live report totals wrong: %+v", rep.Total)
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	res := mustRun(t, testSpec())
	enc := res.EncodeTrace()
	lines := strings.Split(strings.TrimRight(enc, "\n"), "\n")
	bad := []string{
		"",
		"workload v2 mode=virtual",
		strings.Replace(enc, "ops=160", "ops=161", 1),
		strings.Replace(enc, "mode=virtual", "mode=warp", 1),
		strings.Replace(enc, "outcome=ok", "outcome=maybe", 1),
		strings.Join(append(append([]string{}, lines...), "op not-key-value"), "\n") + "\n",
		strings.Replace(enc, "class=0", "class=99", 1),
	}
	for i, text := range bad {
		if _, err := ParseTrace(text); err == nil {
			t.Errorf("garbage trace %d accepted", i)
		}
	}
}
