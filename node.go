package anonconsensus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrNodeClosed is returned by Propose/Wait when the Node was closed.
var ErrNodeClosed = errors.New("anonconsensus: node is closed")

// instance is one queued/running/finished consensus instance.
type instance struct {
	spec     InstanceSpec
	ctx      context.Context
	enqueued time.Time // when Propose put it on the queue (zero if it never got there)

	once sync.Once
	done chan struct{}
	res  *Result
	err  error
}

// Node is a long-lived consensus session: it runs instances over one
// Transport — by default one at a time in Propose order, or up to k
// concurrently with WithMaxInFlight(k) — and streams their outcomes on
// Decisions(). A Node owns its transport and closes it when the Node is
// closed.
//
// Typical use:
//
//	node, _ := anonconsensus.NewNode(anonconsensus.NewLiveTransport(),
//		anonconsensus.WithEnv(anonconsensus.EnvES), anonconsensus.WithGST(5))
//	defer node.Close()
//	res, err := node.Run(ctx, "epoch-1", proposals)
//
// or asynchronously: Propose several instances, consume Decisions(), and
// Wait for the ones whose Result the caller needs. All methods are safe
// for concurrent use. Service deployments typically add WithMaxInFlight
// and WithAdmission and watch Stats(); see the README's service-mode
// example.
type Node struct {
	transport Transport
	session   options

	workers int            // pool size (WithMaxInFlight, default 1)
	queue   chan *instance // capacity set by WithQueueDepth (default 64)
	stop    chan struct{}  // closed by Close: cancels running work, stops the workers
	admit   *tokenBucket   // nil without WithAdmission
	wait    bool           // WithAdmissionWait: block for tokens instead of rejecting

	mu        sync.Mutex
	closed    bool
	instances map[string]*instance

	// Service counters, surfaced by Stats().
	statMu       sync.Mutex
	admitted     int64
	rejected     int64
	completed    int64
	inFlight     int
	peakInFlight int
	queueWait    time.Duration

	// Event feed: emitters append to evBuf (never blocking consensus
	// work); the pump goroutine forwards to the events channel.
	evMu      sync.Mutex
	evCond    *sync.Cond
	evBuf     []Event
	evEnd     bool
	evDropped int64
	events    chan Event

	workerWG sync.WaitGroup
	pumpWG   sync.WaitGroup
}

// NewNode starts a session over transport. The options become the
// session's defaults; Propose can override them per instance. NewNode
// validates the option set (for example an EnvESS session whose
// WithStableSource process is also scheduled to crash by WithCrashes is
// rejected here).
func NewNode(transport Transport, opts ...Option) (*Node, error) {
	if transport == nil {
		return nil, fmt.Errorf("anonconsensus: nil transport")
	}
	var o options
	if err := o.apply(opts); err != nil {
		return nil, err
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return newNode(transport, o), nil
}

// newNode starts a session from an already-resolved option set (the
// compatibility wrappers enter here with a validated legacy Config).
func newNode(transport Transport, o options) *Node {
	workers := o.maxInFlight
	if workers < 1 {
		workers = 1
	}
	depth := o.queueDepth
	if depth < 1 {
		depth = 64
	}
	n := &Node{
		transport: transport,
		session:   o,
		workers:   workers,
		queue:     make(chan *instance, depth),
		stop:      make(chan struct{}),
		instances: make(map[string]*instance),
		events:    make(chan Event, 128),
	}
	if o.admitRate > 0 {
		n.admit = newTokenBucket(o.admitRate, o.admitBurst)
		n.wait = o.admitWait
	}
	n.evCond = sync.NewCond(&n.evMu)
	n.workerWG.Add(workers)
	for i := 0; i < workers; i++ {
		go n.worker()
	}
	n.pumpWG.Add(1)
	go n.pump()
	return n
}

// Transport returns the session's transport (for logging / inspection).
func (n *Node) Transport() Transport { return n.transport }

// Propose enqueues one consensus instance: instanceID names it (unique
// among the session's live — not yet consumed by Wait or Forget —
// instances), proposals holds one initial value per anonymous process,
// and opts override the session options for this instance only.
//
// Propose returns once the instance is accepted; the run happens on the
// node's worker pool, dequeued in Propose order. ctx governs the
// admission wait, the enqueue, and the instance's whole run — cancelling
// it aborts the instance, and Wait then returns an error wrapping
// ctx.Err(). Outcomes stream on Decisions() and are available from Wait.
//
// Under WithAdmission, Propose first spends a token: in fast-reject mode
// an empty bucket — or, later, a full instance queue — returns an error
// wrapping ErrOverloaded without registering anything; with
// WithAdmissionWait it blocks for the token instead.
func (n *Node) Propose(ctx context.Context, instanceID string, proposals []Value, opts ...Option) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if instanceID == "" {
		return fmt.Errorf("anonconsensus: empty instance ID")
	}
	spec, err := n.buildSpec(instanceID, proposals, opts)
	if err != nil {
		return err
	}
	// Admission runs before registration so a shed proposal leaves no
	// trace: no instance, no events, and the ID stays free.
	if n.admit != nil {
		if n.wait {
			if err := n.admit.take(ctx, n.stop); err != nil {
				if err == ErrNodeClosed {
					return ErrNodeClosed
				}
				return fmt.Errorf("anonconsensus: instance %q: %w", instanceID, err)
			}
		} else if !n.admit.tryTake() {
			n.statMu.Lock()
			n.rejected++
			n.statMu.Unlock()
			return fmt.Errorf("anonconsensus: instance %q: %w", instanceID, ErrOverloaded)
		}
	}
	inst := &instance{spec: spec, ctx: ctx, done: make(chan struct{})}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrNodeClosed
	}
	if _, dup := n.instances[instanceID]; dup {
		n.mu.Unlock()
		return fmt.Errorf("anonconsensus: duplicate instance ID %q", instanceID)
	}
	n.instances[instanceID] = inst
	n.mu.Unlock()

	inst.enqueued = time.Now()
	if n.admit != nil && !n.wait {
		// Fast-reject admission extends to the queue: a full backlog is
		// overload, not a reason to block the caller.
		select {
		case n.queue <- inst:
		default:
			n.unregister(instanceID, inst)
			n.statMu.Lock()
			n.rejected++
			n.statMu.Unlock()
			return fmt.Errorf("anonconsensus: instance %q: %w", instanceID, ErrOverloaded)
		}
	} else {
		select {
		case n.queue <- inst:
		case <-ctx.Done():
			// The proposal passed admission (spending a token, when the
			// bucket is on) but never made it onto the queue: count it as
			// turned away, so every registered proposal lands in exactly
			// one of Admitted or Rejected.
			err := fmt.Errorf("anonconsensus: instance %q: %w", instanceID, ctx.Err())
			n.finish(inst, nil, err)
			n.unregister(instanceID, inst)
			n.statMu.Lock()
			n.rejected++
			n.statMu.Unlock()
			return err
		case <-n.stop:
			n.finish(inst, nil, ErrNodeClosed)
			n.unregister(instanceID, inst)
			n.statMu.Lock()
			n.rejected++
			n.statMu.Unlock()
			return ErrNodeClosed
		}
	}
	n.statMu.Lock()
	n.admitted++
	n.statMu.Unlock()
	// The node may have closed between the closed-check and the enqueue;
	// if so the worker is gone and Close's drain may already have missed
	// this instance — fail it here (finish is idempotent, so if the
	// worker did pick it up, whoever runs first wins).
	n.mu.Lock()
	closedNow := n.closed
	n.mu.Unlock()
	if closedNow {
		n.finish(inst, nil, ErrNodeClosed)
		n.unregister(instanceID, inst)
		return ErrNodeClosed
	}
	return nil
}

// unregister releases an instance whose Propose failed, so the ID is not
// permanently occupied by work that never ran.
func (n *Node) unregister(instanceID string, inst *instance) {
	n.mu.Lock()
	if n.instances[instanceID] == inst {
		delete(n.instances, instanceID)
	}
	n.mu.Unlock()
}

// Run is Propose followed by Wait: it blocks until the instance finished
// and returns its Result. Run owns its instance: if the wait itself fails
// (ctx cancelled), the instance — aborted by the same ctx — is released
// in the background once it finishes, so timed-out Runs do not accumulate.
func (n *Node) Run(ctx context.Context, instanceID string, proposals []Value, opts ...Option) (*Result, error) {
	if err := n.Propose(ctx, instanceID, proposals, opts...); err != nil {
		return nil, err
	}
	res, err := n.Wait(ctx, instanceID)
	if err != nil {
		n.mu.Lock()
		inst := n.instances[instanceID]
		n.mu.Unlock()
		if inst != nil {
			go func() {
				<-inst.done
				n.unregister(instanceID, inst)
			}()
		}
	}
	return res, err
}

// Wait blocks until the named instance finished (decided, failed, or was
// cancelled) and returns its outcome. ctx bounds the wait only — it does
// not cancel the instance.
//
// Wait consumes the outcome: the instance is released from the session
// (keeping a long-lived Node's memory bounded) and its ID becomes
// available for reuse. A second Wait for the same ID reports it unknown.
// Callers that drive the session through the Decisions() feed instead get
// each outcome from the EventInstanceDone event and can release the
// instance with Forget.
func (n *Node) Wait(ctx context.Context, instanceID string) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n.mu.Lock()
	inst := n.instances[instanceID]
	n.mu.Unlock()
	if inst == nil {
		return nil, fmt.Errorf("anonconsensus: unknown instance %q", instanceID)
	}
	select {
	case <-inst.done:
		n.mu.Lock()
		if n.instances[instanceID] == inst {
			delete(n.instances, instanceID)
		}
		n.mu.Unlock()
		return inst.res, inst.err
	case <-ctx.Done():
		return nil, fmt.Errorf("anonconsensus: waiting for instance %q: %w", instanceID, ctx.Err())
	}
}

// Forget releases a finished instance without collecting its outcome (for
// sessions driven purely through the Decisions() feed). It reports whether
// the instance existed and was finished; a still-pending or running
// instance is not forgotten.
func (n *Node) Forget(instanceID string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	inst := n.instances[instanceID]
	if inst == nil {
		return false
	}
	select {
	case <-inst.done:
		delete(n.instances, instanceID)
		return true
	default:
		return false
	}
}

// Decisions returns the session's event feed: an EventInstanceStarted,
// zero or more EventDecision (one per process that decided) and an
// EventInstanceDone per instance. Events are emitted when the instance's
// run completes — the granularity is per instance, not mid-run. One
// instance's events always appear in that order; with WithMaxInFlight > 1
// the events of different in-flight instances interleave.
//
// An instance that fails before its run starts — its Propose aborted
// during the enqueue, Close drained it off the queue, or a worker picked
// it up only to find it already cancelled — emits EventInstanceDone
// alone, with no prior EventInstanceStarted: Started marks the start of
// a transport run, so a Done without a Started is precisely "this
// instance never ran". Consumers must not assume the pair.
//
// The feed is lossy by contract: it is best-effort buffered and never
// blocks consensus work. Without a consumer the oldest undelivered
// events are dropped beyond a bounded backlog — each drop is counted in
// Stats().EventsDropped — and Close terminates the feed (undelivered
// events are then dropped). Callers that need an instance's
// authoritative outcome should use Wait, which never loses one.
func (n *Node) Decisions() <-chan Event { return n.events }

// Close shuts the session down: running work is cancelled, queued
// instances fail with ErrNodeClosed, the Decisions feed is closed, and the
// transport is closed. Close is idempotent.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()

	close(n.stop)
	n.workerWG.Wait()
	// The workers are gone: fail whatever is still queued.
	for {
		select {
		case inst := <-n.queue:
			n.finish(inst, nil, ErrNodeClosed)
		default:
			n.endEvents()
			n.pumpWG.Wait()
			return n.transport.Close()
		}
	}
}

// buildSpec resolves session options + per-instance overrides into a spec.
func (n *Node) buildSpec(id string, proposals []Value, opts []Option) (InstanceSpec, error) {
	o := n.session.clone()
	if err := o.apply(opts); err != nil {
		return InstanceSpec{}, err
	}
	return o.spec(id, proposals)
}

// spec validates a resolved option set and turns it into a validated
// instance spec (shared by Node sessions and RunBatch).
func (o *options) spec(id string, proposals []Value) (InstanceSpec, error) {
	if err := o.validate(); err != nil {
		return InstanceSpec{}, err
	}
	props := make([]Value, len(proposals))
	copy(props, proposals)
	spec := InstanceSpec{
		ID:           id,
		Proposals:    props,
		Env:          o.resolvedEnv(),
		GST:          o.gst,
		StableSource: o.stableSource,
		Seed:         o.seed,
		Crashes:      o.scenario.Crashes,
		Scenario:     o.scenario,
		Interval:     o.interval,
		Timeout:      o.timeout,
		MaxRounds:    o.maxRounds,
		Reconnect:    o.reconnect,
	}
	if err := spec.validate(); err != nil {
		return InstanceSpec{}, err
	}
	return spec, nil
}

// worker is one pool goroutine: it runs queued instances one at a time.
// The node starts WithMaxInFlight of these, so up to that many instances
// are in flight at once (one, and strictly in Propose order, by
// default). The stop check is prioritized: once Close fired, queued work
// must not be started (Go's select picks randomly among ready cases, so
// a single select would sometimes run one more instance).
func (n *Node) worker() {
	defer n.workerWG.Done()
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		select {
		case <-n.stop:
			return
		case inst := <-n.queue:
			n.runInstance(inst)
		}
	}
}

// runInstance executes one instance on the transport, under a context that
// dies with either the caller's ctx or the node itself.
func (n *Node) runInstance(inst *instance) {
	n.statMu.Lock()
	n.inFlight++
	if n.inFlight > n.peakInFlight {
		n.peakInFlight = n.inFlight
	}
	if !inst.enqueued.IsZero() {
		n.queueWait += time.Since(inst.enqueued)
	}
	n.statMu.Unlock()
	defer func() {
		n.statMu.Lock()
		n.inFlight--
		n.completed++
		n.statMu.Unlock()
	}()
	select {
	case <-n.stop:
		// Close won the race for this queued instance: fail it with the
		// documented shutdown error, not a context-cancellation one.
		n.finish(inst, nil, ErrNodeClosed)
		return
	default:
	}
	if err := inst.ctx.Err(); err != nil {
		n.finish(inst, nil, fmt.Errorf("anonconsensus: instance %q: %w", inst.spec.ID, err))
		return
	}
	runCtx, cancel := context.WithCancel(inst.ctx)
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-n.stop:
			cancel()
		case <-watchDone:
		}
	}()
	n.emit(Event{Instance: inst.spec.ID, Kind: EventInstanceStarted})
	res, err := n.transport.Run(runCtx, inst.spec)
	close(watchDone)
	cancel()
	if err != nil {
		n.finish(inst, nil, fmt.Errorf("anonconsensus: instance %q: %w", inst.spec.ID, err))
		return
	}
	for _, d := range res.Decisions {
		if d.Decided {
			n.emit(Event{Instance: inst.spec.ID, Kind: EventDecision, Decision: d})
		}
	}
	n.finish(inst, res, nil)
}

// finish records an instance's outcome exactly once and emits its
// EventInstanceDone.
func (n *Node) finish(inst *instance, res *Result, err error) {
	inst.once.Do(func() {
		inst.res, inst.err = res, err
		n.emit(Event{Instance: inst.spec.ID, Kind: EventInstanceDone, Result: res, Err: err})
		close(inst.done)
	})
}

// maxBufferedEvents bounds the feed's backlog: with no consumer on
// Decisions(), the oldest undelivered events are dropped beyond this.
const maxBufferedEvents = 1024

// emit appends to the event buffer; it never blocks, and it never lets an
// absent consumer grow the buffer without bound. Every event the overflow
// policy discards is counted (Stats().EventsDropped), so an operator can
// tell a quiet feed from a lossy one.
func (n *Node) emit(ev Event) {
	n.evMu.Lock()
	if n.evEnd {
		// The feed already ended (Close raced a late finish): the event
		// cannot be delivered, and a discarded event is a counted event.
		n.evDropped++
	} else {
		if len(n.evBuf) >= maxBufferedEvents {
			n.evBuf = n.evBuf[1:]
			n.evDropped++
		}
		n.evBuf = append(n.evBuf, ev)
		n.evCond.Signal()
	}
	n.evMu.Unlock()
}

// endEvents stops the feed; the pump drains what it can and closes the
// channel.
func (n *Node) endEvents() {
	n.evMu.Lock()
	n.evEnd = true
	n.evCond.Signal()
	n.evMu.Unlock()
}

// pump forwards buffered events to the (buffered) events channel so that
// a slow or absent consumer never stalls the worker.
func (n *Node) pump() {
	defer n.pumpWG.Done()
	for {
		n.evMu.Lock()
		for len(n.evBuf) == 0 && !n.evEnd {
			n.evCond.Wait()
		}
		if len(n.evBuf) == 0 {
			n.evMu.Unlock()
			close(n.events)
			return
		}
		ev := n.evBuf[0]
		n.evBuf = n.evBuf[1:]
		ended := n.evEnd
		n.evMu.Unlock()
		if ended {
			// Closing down: deliver only what fits without blocking, and
			// count what does not fit — every discarded event is counted.
			select {
			case n.events <- ev:
			default:
				n.countDrop()
			}
			continue
		}
		select {
		case n.events <- ev:
		case <-n.stop:
			// Node closing: deliver what fits in the buffer, drop (and
			// count) the rest.
			select {
			case n.events <- ev:
			default:
				n.countDrop()
			}
		}
	}
}

// countDrop counts one event the pump had to discard. Drops are tallied
// under evMu together with emit's overflow drops, so EventsDropped is the
// single authoritative count of undelivered events.
func (n *Node) countDrop() {
	n.evMu.Lock()
	n.evDropped++
	n.evMu.Unlock()
}
