package anonconsensus

import (
	"context"
	"errors"
	"testing"
	"time"
)

func props(vals ...int64) []Value {
	out := make([]Value, len(vals))
	for i, v := range vals {
		out[i] = NumValue(v)
	}
	return out
}

// TestNodeSequentialInstances is the acceptance demo: one Node, one
// transport, several consensus instances back to back, per-instance
// decisions streamed on Decisions().
func TestNodeSequentialInstances(t *testing.T) {
	node, err := NewNode(NewSimTransport(), WithEnv(EnvES), WithGST(6), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	ids := []string{"epoch-1", "epoch-2", "epoch-3", "epoch-4"}
	for k, id := range ids {
		if err := node.Propose(context.Background(), id, props(int64(10*k+1), int64(10*k+2), int64(10*k+3))); err != nil {
			t.Fatalf("propose %s: %v", id, err)
		}
	}
	for _, id := range ids {
		res, err := node.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if _, ok := res.Agreed(); !ok {
			t.Fatalf("instance %s did not agree: %+v", id, res.Decisions)
		}
	}

	// The feed must carry every instance's lifecycle, in execution order.
	started := map[string]bool{}
	decisions := map[string]int{}
	done := map[string]bool{}
	timeout := time.After(10 * time.Second)
	for len(done) < len(ids) {
		select {
		case ev, ok := <-node.Decisions():
			if !ok {
				t.Fatalf("feed closed early: done=%v", done)
			}
			switch ev.Kind {
			case EventInstanceStarted:
				started[ev.Instance] = true
			case EventDecision:
				if !started[ev.Instance] {
					t.Fatalf("decision before start for %s", ev.Instance)
				}
				if !ev.Decision.Decided {
					t.Fatalf("undecided decision event: %+v", ev)
				}
				decisions[ev.Instance]++
			case EventInstanceDone:
				if ev.Err != nil {
					t.Fatalf("instance %s failed: %v", ev.Instance, ev.Err)
				}
				if ev.Result == nil {
					t.Fatalf("done event without result for %s", ev.Instance)
				}
				done[ev.Instance] = true
			}
		case <-timeout:
			t.Fatalf("feed incomplete: started=%v done=%v", started, done)
		}
	}
	for _, id := range ids {
		if decisions[id] == 0 {
			t.Errorf("no decision events for %s", id)
		}
	}
}

func TestNodePerInstanceOptionOverrides(t *testing.T) {
	node, err := NewNode(NewSimTransport(), WithEnv(EnvES), WithGST(4), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// The second instance overrides the session environment; both must
	// still reach agreement, and the override must not leak back.
	if _, err := node.Run(context.Background(), "es", props(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	res, err := node.Run(context.Background(), "ess", props(4, 5, 6),
		WithEnv(EnvESS), WithStableSource(1), WithGST(8), WithMaxRounds(600))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Agreed(); !ok {
		t.Fatalf("ESS override did not agree: %+v", res.Decisions)
	}
	if _, err := node.Run(context.Background(), "es-again", props(7, 8, 9)); err != nil {
		t.Fatal(err)
	}
}

func TestNodeCancellationMidRunLive(t *testing.T) {
	// A live instance that cannot decide before the cancel fires: with a
	// half-second round timer, deciding takes multiple seconds no matter
	// what the adversary does. Cancelling the Propose context must abort
	// it promptly with a wrapped context error.
	node, err := NewNode(NewLiveTransport(),
		WithEnv(EnvES), WithGST(0), WithSeed(3),
		WithInterval(500*time.Millisecond), WithTimeout(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	ctx, cancel := context.WithCancel(context.Background())
	if err := node.Propose(ctx, "doomed", props(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = node.Wait(context.Background(), "doomed")
	if err == nil {
		t.Fatal("cancelled instance reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap ctx.Err(): %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: took %v", elapsed)
	}
}

func TestNodeCancellationMidRunSim(t *testing.T) {
	// Same for the simulator: a pre-cancelled context must abort before the
	// run completes, with a wrapped context error.
	node, err := NewNode(NewSimTransport(), WithEnv(EnvES), WithGST(5))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := node.Propose(ctx, "dead-on-arrival", props(1, 2)); err == nil {
		// The enqueue may or may not observe the cancellation first; either
		// way Wait must surface the context error.
		if _, werr := node.Wait(context.Background(), "dead-on-arrival"); !errors.Is(werr, context.Canceled) {
			t.Fatalf("want wrapped context.Canceled, got %v", werr)
		}
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
}

func TestNodeDuplicateAndUnknownIDs(t *testing.T) {
	node, err := NewNode(NewSimTransport(), WithGST(3))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	if err := node.Propose(context.Background(), "a", props(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := node.Propose(context.Background(), "a", props(3, 4)); err == nil {
		t.Error("duplicate live instance ID accepted")
	}
	if err := node.Propose(context.Background(), "", props(1)); err == nil {
		t.Error("empty instance ID accepted")
	}
	if _, err := node.Wait(context.Background(), "nope"); err == nil {
		t.Error("unknown instance ID accepted by Wait")
	}
	// Wait consumes the outcome: the ID frees up for reuse, and a second
	// Wait reports it unknown.
	if _, err := node.Wait(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := node.Wait(context.Background(), "a"); err == nil {
		t.Error("consumed instance still waitable")
	}
	if _, err := node.Run(context.Background(), "a", props(5, 6)); err != nil {
		t.Errorf("consumed ID not reusable: %v", err)
	}
}

func TestNodeForgetReleasesFeedDrivenInstances(t *testing.T) {
	node, err := NewNode(NewSimTransport(), WithGST(3))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	if node.Forget("missing") {
		t.Error("Forget invented an instance")
	}
	if err := node.Propose(context.Background(), "fed", props(1, 2)); err != nil {
		t.Fatal(err)
	}
	// Drive the session through the feed only, then release.
	for ev := range node.Decisions() {
		if ev.Kind == EventInstanceDone && ev.Instance == "fed" {
			break
		}
	}
	if !node.Forget("fed") {
		t.Error("finished instance not forgettable")
	}
	if _, err := node.Wait(context.Background(), "fed"); err == nil {
		t.Error("forgotten instance still waitable")
	}
}

func TestNodeCloseRejectsFurtherWork(t *testing.T) {
	node, err := NewNode(NewSimTransport(), WithGST(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Run(context.Background(), "a", props(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if err := node.Propose(context.Background(), "b", props(1, 2)); !errors.Is(err, ErrNodeClosed) {
		t.Errorf("propose after close: %v", err)
	}
	// The feed must be closed.
	for range node.Decisions() {
	}
	// The transport is owned by the node and must be closed too.
	if _, err := node.Transport().Run(context.Background(), InstanceSpec{
		Proposals: props(1), Env: EnvES,
	}); err == nil {
		t.Error("transport still usable after node close")
	}
}

func TestNodeOverTCPTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP round trips in -short mode")
	}
	node, err := NewNode(NewTCPTransport(),
		WithEnv(EnvES), WithGST(2), WithSeed(5),
		WithInterval(8*time.Millisecond), WithTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// Two instances over one transport: each gets a fresh hub, so no
	// frames leak across instance boundaries.
	for k, id := range []string{"tcp-1", "tcp-2"} {
		res, err := node.Run(context.Background(), id, props(int64(k+1), int64(k+2), int64(k+3)))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if _, ok := res.Agreed(); !ok {
			t.Fatalf("%s did not agree: %+v", id, res.Decisions)
		}
	}
}

// TestTransportParity drives the identical spec through all three backends
// via the one Transport interface — the unification the redesign is for.
func TestTransportParity(t *testing.T) {
	if testing.Short() {
		t.Skip("live + TCP round trips in -short mode")
	}
	spec := InstanceSpec{
		ID:        "parity",
		Proposals: props(11, 22, 33),
		Env:       EnvES,
		GST:       2,
		Seed:      9,
		Interval:  6 * time.Millisecond,
		Timeout:   30 * time.Second,
	}
	for _, transport := range []Transport{NewLiveTransport(), NewSimTransport(), NewTCPTransport()} {
		t.Run(transport.Name(), func(t *testing.T) {
			defer transport.Close()
			res, err := transport.Run(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			v, ok := res.Agreed()
			if !ok {
				t.Fatalf("no agreement over %s: %+v", transport.Name(), res.Decisions)
			}
			found := false
			for _, p := range spec.Proposals {
				if p == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("validity violated over %s: decided %q", transport.Name(), v)
			}
		})
	}
}

func TestNodeCrashScheduleFlowsThroughTransports(t *testing.T) {
	node, err := NewNode(NewSimTransport(), WithEnv(EnvES), WithGST(6), WithCrashes(map[int]int{0: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	res, err := node.Run(context.Background(), "with-crash", props(1, 2, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decisions[0].Crashed {
		t.Error("crash schedule not applied")
	}
	if _, ok := res.Agreed(); !ok {
		t.Fatalf("survivors must agree: %+v", res.Decisions)
	}
}

func TestNodeFailedProposeReleasesID(t *testing.T) {
	node, err := NewNode(NewSimTransport(), WithGST(3))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := node.Propose(ctx, "retry-me", props(1, 2)); err != nil {
		// The failed Propose must not occupy the ID forever.
		if err := node.Propose(context.Background(), "retry-me", props(1, 2)); err != nil {
			t.Fatalf("ID still occupied after failed Propose: %v", err)
		}
	} else {
		// The enqueue won the race; the worker fails it with the ctx error
		// and Wait consumes it, after which the ID is reusable.
		if _, werr := node.Wait(context.Background(), "retry-me"); !errors.Is(werr, context.Canceled) {
			t.Fatalf("want wrapped context.Canceled, got %v", werr)
		}
		if err := node.Propose(context.Background(), "retry-me", props(1, 2)); err != nil {
			t.Fatalf("ID not reusable after consumed failure: %v", err)
		}
	}
	if _, err := node.Wait(context.Background(), "retry-me"); err != nil {
		t.Fatal(err)
	}
}
