package anonconsensus

import (
	"fmt"
	"time"
)

// options is the resolved knob set shared by Node sessions and individual
// instances. Zero values mean "use the backend's default" so that the
// compatibility wrappers reproduce the historical Config semantics
// byte-for-byte.
type options struct {
	env          Environment
	gst          int
	stableSource int
	seed         int64
	scenario     Scenario
	interval     time.Duration
	timeout      time.Duration
	maxRounds    int
	parallelism  int
	reconnect    ReconnectPolicy
	maxInFlight  int
	queueDepth   int
	admitRate    float64
	admitBurst   int
	admitWait    bool
}

// Option configures a Node session (NewNode) or one instance
// (Node.Propose). Per-instance options override the session's.
type Option func(*options) error

// clone deep-copies o so per-instance overrides never mutate the session.
func (o options) clone() options {
	out := o
	out.scenario = o.scenario.clone()
	return out
}

// apply folds opts into o, stopping at the first invalid option.
func (o *options) apply(opts []Option) error {
	for _, opt := range opts {
		if opt == nil {
			return fmt.Errorf("anonconsensus: nil option")
		}
		if err := opt(o); err != nil {
			return err
		}
	}
	return nil
}

// validate checks the session-level consistency knowable before any
// instance exists (no process count yet). Per-instance checks — index
// ranges against the ensemble size — live in InstanceSpec.validate, the
// single contract every Transport may assume.
func (o *options) validate() error {
	switch o.env {
	case EnvES, EnvESS, 0:
	default:
		return fmt.Errorf("anonconsensus: unknown environment %d", int(o.env))
	}
	if o.resolvedEnv() == EnvESS {
		if _, crashed := o.scenario.Crashes[o.stableSource]; crashed {
			return fmt.Errorf("anonconsensus: the stable source must stay correct")
		}
	}
	return nil
}

func (o *options) resolvedEnv() Environment {
	if o.env == 0 {
		return EnvES
	}
	return o.env
}

// WithEnv selects the synchrony environment (EnvES or EnvESS).
func WithEnv(env Environment) Option {
	return func(o *options) error {
		switch env {
		case EnvES, EnvESS:
			o.env = env
			return nil
		default:
			return fmt.Errorf("anonconsensus: unknown environment %d", int(env))
		}
	}
}

// WithGST sets the stabilization round (0 = stable from the start).
func WithGST(round int) Option {
	return func(o *options) error {
		if round < 0 {
			return fmt.Errorf("anonconsensus: negative GST %d", round)
		}
		o.gst = round
		return nil
	}
}

// WithSeed seeds the pre-stabilization adversary.
func WithSeed(seed int64) Option {
	return func(o *options) error {
		o.seed = seed
		return nil
	}
}

// WithStableSource names the process that is the eventual source (EnvESS
// only). It must not also appear in the crash schedule.
func WithStableSource(proc int) Option {
	return func(o *options) error {
		if proc < 0 {
			return fmt.Errorf("anonconsensus: negative stable source %d", proc)
		}
		o.stableSource = proc
		return nil
	}
}

// WithCrashes schedules crashes: process index to the round (≥ 1) at
// which it stops. It is a thin wrapper over the scenario plane — it sets
// Scenario.Crashes and composes with WithScenario's other dimensions
// (apply WithCrashes after WithScenario to override its crash schedule).
//
// Validation is eager: process indexes must be ≥ 0 and rounds ≥ 1, checked
// here; that every index fits the ensemble — and that at least one process
// survives (see ErrAllCrashed) — is checked when the instance spec is
// built, before anything runs. Round 0 is rejected because the backends
// disagree on its meaning (the simulator reads it as "never initialized",
// the real-time transports as "never crashes"); requiring ≥ 1 keeps one
// spec portable across every Transport. The map is copied.
func WithCrashes(crashes map[int]int) Option {
	return func(o *options) error {
		o.scenario.Crashes = make(map[int]int, len(crashes))
		for pid, round := range crashes {
			if pid < 0 {
				return fmt.Errorf("anonconsensus: crash schedule names negative process %d", pid)
			}
			if round < 1 {
				return fmt.Errorf("anonconsensus: crash round %d for process %d (must be ≥ 1)", round, pid)
			}
			o.scenario.Crashes[pid] = round
		}
		return nil
	}
}

// WithScenario sets the whole fault scenario — crash schedule, loss and
// duplication rates, partitions — replacing any previously configured
// scenario dimensions (including a WithCrashes schedule when s.Crashes is
// non-nil; a nil s.Crashes leaves crashes to WithCrashes). The scenario's
// hash-based fault draws are seeded by WithSeed, so identical specs
// produce identical fault schedules on every backend. The scenario is
// copied; n-independent structure is validated eagerly.
func WithScenario(s Scenario) Option {
	return func(o *options) error {
		if err := s.validate(); err != nil {
			return err
		}
		c := s.clone()
		if c.Crashes == nil {
			c.Crashes = o.scenario.Crashes
		}
		o.scenario = c
		return nil
	}
}

// WithLoss sets the scenario's link-loss percentage (0–100): that fraction
// of deliveries, drawn deterministically from the run seed per (round,
// sender, receiver), never arrives. Loss deliberately breaks the model's
// reliable-broadcast assumption.
func WithLoss(pct int) Option {
	return func(o *options) error {
		if pct < 0 || pct > 100 {
			return fmt.Errorf("anonconsensus: loss percentage %d outside [0,100]", pct)
		}
		o.scenario.LossPct = pct
		return nil
	}
}

// WithDuplication sets the scenario's link-duplication percentage (0–100):
// that fraction of deliveries arrives twice, exercising the framework's
// set-semantics deduplication.
func WithDuplication(pct int) Option {
	return func(o *options) error {
		if pct < 0 || pct > 100 {
			return fmt.Errorf("anonconsensus: duplication percentage %d outside [0,100]", pct)
		}
		o.scenario.DupPct = pct
		return nil
	}
}

// WithPartition appends a round-ranged partition to the scenario: for
// rounds in [from, until) the ring is split at cut into [0,cut) and
// [cut,n), and messages do not cross. until = 0 means the partition never
// heals. Partitions compose with each other and with WithLoss /
// WithDuplication / WithCrashes.
func WithPartition(from, until, cut int) Option {
	return func(o *options) error {
		p := Partition{From: from, Until: until, Cut: cut}
		s := o.scenario
		s.Partitions = append(append([]Partition(nil), s.Partitions...), p)
		if err := s.validate(); err != nil {
			return err
		}
		o.scenario = s
		return nil
	}
}

// WithInterval sets the round-timer period of the real-time transports
// (live and TCP); the deterministic simulator ignores it.
func WithInterval(d time.Duration) Option {
	return func(o *options) error {
		if d <= 0 {
			return fmt.Errorf("anonconsensus: non-positive interval %v", d)
		}
		o.interval = d
		return nil
	}
}

// WithTimeout bounds a real-time instance run (live and TCP transports).
func WithTimeout(d time.Duration) Option {
	return func(o *options) error {
		if d <= 0 {
			return fmt.Errorf("anonconsensus: non-positive timeout %v", d)
		}
		o.timeout = d
		return nil
	}
}

// ReconnectPolicy governs how TCP-backend nodes respond to losing their
// hub connection: redial with exponential backoff and jitter, resuming
// the hub session from the replay cursor so no frame is lost or
// re-processed. The jitter schedule is derived deterministically from the
// run seed and the process index, so a chaos run replays under the same
// seed.
//
// The zero policy means "backend default" (a handful of attempts with
// interval-scaled backoff); MaxAttempts < 0 disables reconnection
// entirely, restoring fail-fast on connection loss. The sim and live
// transports have no network to lose and ignore the policy.
type ReconnectPolicy struct {
	// MaxAttempts bounds redials per outage. 0 means the backend default
	// (5); negative disables reconnection.
	MaxAttempts int
	// BaseDelay is the first backoff delay; 0 means the backend default
	// (2× the round interval, at least 20ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; 0 means the backend default
	// (1s).
	MaxDelay time.Duration
}

// WithReconnect sets the TCP backend's reconnect policy (see
// ReconnectPolicy). Reconnection is on by default; pass a policy with
// MaxAttempts < 0 to disable it.
func WithReconnect(p ReconnectPolicy) Option {
	return func(o *options) error {
		if p.BaseDelay < 0 || p.MaxDelay < 0 {
			return fmt.Errorf("anonconsensus: negative reconnect delay (base %v, max %v)", p.BaseDelay, p.MaxDelay)
		}
		if p.MaxDelay > 0 && p.BaseDelay > p.MaxDelay {
			return fmt.Errorf("anonconsensus: reconnect base delay %v exceeds max %v", p.BaseDelay, p.MaxDelay)
		}
		o.reconnect = p
		return nil
	}
}

// WithMaxRounds bounds a simulated instance run (sim transport); the
// default is 10·n+200.
func WithMaxRounds(rounds int) Option {
	return func(o *options) error {
		if rounds <= 0 {
			return fmt.Errorf("anonconsensus: non-positive max rounds %d", rounds)
		}
		o.maxRounds = rounds
		return nil
	}
}

// WithMaxInFlight sets how many instances a Node session runs
// concurrently; the default is 1, which preserves the historical
// strictly-sequential semantics. With k > 1 the node keeps up to k
// instances in flight on a worker pool while Propose/Wait/Forget/
// Decisions() keep their contracts: each instance still runs under its
// own seed and spec (per-instance determinism is untouched), and the
// Decisions() feed stays ordered per instance — an instance's Started,
// Decision and Done events are emitted in order by the one worker that
// runs it, though events of different in-flight instances interleave.
//
// Instances are dequeued in Propose order but, with k > 1, no longer
// finish in it. It is session-level: pass it to NewNode; per-Propose use
// has no effect on the already-sized pool.
func WithMaxInFlight(k int) Option {
	return func(o *options) error {
		if k < 1 {
			return fmt.Errorf("anonconsensus: max in-flight %d (must be ≥ 1)", k)
		}
		o.maxInFlight = k
		return nil
	}
}

// WithQueueDepth sets the capacity of a Node session's instance queue
// (the backlog between Propose and the worker pool); the default is 64.
// Without admission control a full queue blocks Propose until a worker
// drains it; under fast-reject admission (WithAdmission) a full queue
// returns ErrOverloaded instead. Session-level, like WithMaxInFlight.
func WithQueueDepth(depth int) Option {
	return func(o *options) error {
		if depth < 1 {
			return fmt.Errorf("anonconsensus: queue depth %d (must be ≥ 1)", depth)
		}
		o.queueDepth = depth
		return nil
	}
}

// WithAdmission puts a token-bucket admission controller in front of the
// Node's instance queue: Propose spends one token per instance, the
// bucket refills at rate tokens/second up to burst. When the bucket is
// empty — or the instance queue is full — Propose fast-rejects with an
// error wrapping ErrOverloaded, so an overloaded service sheds load
// instead of queueing without bound. Rejected proposals leave no trace:
// no events, no registered instance, and the ID stays free.
//
// Combine with WithAdmissionWait to block (context-aware) for a token
// instead of rejecting. The default is no admission control: Propose
// blocks on a full queue and never returns ErrOverloaded. Session-level,
// like WithMaxInFlight.
func WithAdmission(rate float64, burst int) Option {
	return func(o *options) error {
		if rate <= 0 {
			return fmt.Errorf("anonconsensus: non-positive admission rate %v", rate)
		}
		if burst < 1 {
			return fmt.Errorf("anonconsensus: admission burst %d (must be ≥ 1)", burst)
		}
		o.admitRate = rate
		o.admitBurst = burst
		return nil
	}
}

// WithAdmissionWait switches WithAdmission from fast-reject to blocking:
// Propose waits for a token (honouring its ctx and node shutdown) rather
// than returning ErrOverloaded, and then blocks on queue space as in the
// no-admission mode. Waiters race for tokens; there is no FIFO fairness
// guarantee. It has no effect without WithAdmission.
func WithAdmissionWait() Option {
	return func(o *options) error {
		o.admitWait = true
		return nil
	}
}

// WithParallelism bounds the worker pool RunBatch fans instances across;
// 0 (the default) means GOMAXPROCS. Results are byte-identical at any
// setting — the knob trades wall-clock for cores, never output; the same
// contract holds for ExploreConfig.Parallelism on the exploration plane.
// It is batch-level: RunBatch rejects it inside a BatchItem's Opts, and
// Node sessions ignore it (their concurrency knob is WithMaxInFlight).
func WithParallelism(workers int) Option {
	return func(o *options) error {
		if workers < 0 {
			return fmt.Errorf("anonconsensus: negative parallelism %d", workers)
		}
		o.parallelism = workers
		return nil
	}
}
