package anonconsensus

import (
	"context"
	"reflect"
	"testing"
	"time"

	"anonconsensus/internal/core"
	"anonconsensus/internal/sim"
)

func TestOptionValidation(t *testing.T) {
	bad := []struct {
		name string
		opts []Option
	}{
		{"crashed stable source", []Option{
			WithEnv(EnvESS), WithStableSource(1), WithCrashes(map[int]int{1: 3}),
		}},
		{"unknown env", []Option{WithEnv(Environment(42))}},
		{"negative gst", []Option{WithGST(-1)}},
		{"negative stable source", []Option{WithStableSource(-2)}},
		{"negative crash round", []Option{WithCrashes(map[int]int{0: -1})}},
		{"zero crash round", []Option{WithCrashes(map[int]int{0: 0})}},
		{"zero interval", []Option{WithInterval(0)}},
		{"zero timeout", []Option{WithTimeout(0)}},
		{"zero max rounds", []Option{WithMaxRounds(0)}},
		{"negative reconnect delay", []Option{WithReconnect(ReconnectPolicy{BaseDelay: -time.Second})}},
		{"reconnect base over max", []Option{WithReconnect(ReconnectPolicy{BaseDelay: 2 * time.Second, MaxDelay: time.Second})}},
		{"nil option", []Option{nil}},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			node, err := NewNode(NewSimTransport(), tt.opts...)
			if err == nil {
				node.Close()
				t.Error("invalid option set accepted")
			}
		})
	}
	if _, err := NewNode(nil); err == nil {
		t.Error("nil transport accepted")
	}
}

func TestOptionValidationAtPropose(t *testing.T) {
	node, err := NewNode(NewSimTransport(), WithEnv(EnvESS), WithStableSource(5))
	if err != nil {
		t.Fatal(err) // source index range is only checkable per instance
	}
	defer node.Close()
	// Three proposals: stable source 5 is out of range.
	if err := node.Propose(context.Background(), "bad", props(1, 2, 3)); err == nil {
		t.Error("out-of-range stable source accepted")
	}
	// Crash schedule naming a process outside the ensemble.
	if err := node.Propose(context.Background(), "bad2", props(1, 2, 3),
		WithEnv(EnvES), WithCrashes(map[int]int{7: 1})); err == nil {
		t.Error("out-of-range crash pid accepted")
	}
	// No proposals at all.
	if err := node.Propose(context.Background(), "bad3", nil); err == nil {
		t.Error("empty proposal list accepted")
	}
	// Invalid value.
	if err := node.Propose(context.Background(), "bad4", []Value{""}); err == nil {
		t.Error("invalid proposal accepted")
	}
}

// TestSimulateWrapperMatchesSeedBehavior pins the compatibility promise:
// the Simulate wrapper must produce results identical to the seed's direct
// core/sim code path, field for field, on fixed seeds.
func TestSimulateWrapperMatchesSeedBehavior(t *testing.T) {
	configs := []Config{
		{Proposals: props(1, 2, 3), Env: EnvES, GST: 6, Seed: 1},
		{Proposals: props(5, 6, 7, 8), Env: EnvESS, GST: 8, StableSource: 2, Seed: 3, MaxRounds: 600},
		{Proposals: props(1, 2, 3, 4), Env: EnvES, GST: 8, Seed: 42, Crashes: map[int]int{0: 3}},
	}
	for _, cfg := range configs {
		got, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := seedSimulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("wrapper diverged from seed path:\n got %+v\nwant %+v", got, want)
		}
	}
}

// seedSimulate reproduces the seed release's Simulate body verbatim (the
// reference the wrapper is held to).
func seedSimulate(cfg Config) (*Result, error) {
	var policy sim.Policy
	if cfg.env() == EnvESS {
		policy = &sim.ESS{GST: cfg.GST, StableSource: cfg.StableSource, Pre: sim.MS{Seed: cfg.Seed}}
	} else {
		policy = &sim.ES{GST: cfg.GST, Pre: sim.MS{Seed: cfg.Seed}}
	}
	opts := core.RunOpts{Policy: policy, Crashes: cfg.Crashes, MaxRounds: cfg.MaxRounds}
	var (
		res *sim.Result
		err error
	)
	if cfg.env() == EnvESS {
		res, err = core.RunESS(toValues(cfg.Proposals), opts)
	} else {
		res, err = core.RunES(toValues(cfg.Proposals), opts)
	}
	if err != nil {
		return nil, err
	}
	out := &Result{Rounds: res.Rounds}
	for i, st := range res.Statuses {
		out.Decisions = append(out.Decisions, Decision{
			Proc:    i,
			Decided: st.Decided,
			Value:   Value(st.Decision),
			Round:   st.DecidedAt,
			Crashed: st.Crashed,
		})
	}
	return out, nil
}

// TestSolveWrapperKeepsSeedShape checks the live wrapper end to end: same
// Config surface, agreement reached, Elapsed populated — the seed
// contract (live runs are wall-clock, so byte-identity is checked on the
// deterministic backend above).
func TestSolveWrapperKeepsSeedShape(t *testing.T) {
	res, err := Solve(Config{
		Proposals: props(10, 20, 30),
		Env:       EnvES,
		GST:       3,
		Seed:      2,
		Interval:  4 * time.Millisecond,
		Timeout:   20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Agreed(); !ok {
		t.Fatalf("no agreement: %+v", res.Decisions)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
	if len(res.Decisions) != 3 {
		t.Errorf("want 3 decisions, got %d", len(res.Decisions))
	}
}
