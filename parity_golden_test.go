package anonconsensus_test

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"anonconsensus/internal/core"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
	"anonconsensus/internal/weakset"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/parity_golden.txt from the current implementation")

// TestParityGolden pins deterministic fixed-seed behavior byte for byte
// against testdata/parity_golden.txt, which was generated from the
// pre-canonical-form-refactor implementation. It covers decisions,
// decision rounds, total rounds, and — crucially for experiment T6 — the
// metrics counters (broadcasts, deliveries, canonical payload bytes, max
// envelope size). Any representation change that alters algorithm
// behavior, delivery accounting or canonical encodings shows up here as a
// diff, not as a silent drift.
//
// Regenerate intentionally with: go test -run TestParityGolden -update .
func TestParityGolden(t *testing.T) {
	got := parityReport()
	want, err := os.ReadFile("testdata/parity_golden.txt")
	if *updateGolden {
		if err := os.WriteFile("testdata/parity_golden.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("parity golden rewritten")
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("fixed-seed behavior diverged from the pinned golden.\nDiff the output of `go test -run TestParityGolden -v` against testdata/parity_golden.txt.\n--- got ---\n%s", diffHint(string(want), got))
	}
}

// diffHint returns the first diverging line pair to keep failures readable.
func diffHint(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n want: %s\n  got: %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d", len(wl), len(gl))
}

func parityReport() string {
	var b strings.Builder
	dump := func(name string, res *sim.Result, err error) {
		if err != nil {
			fmt.Fprintf(&b, "%s: ERR %v\n", name, err)
			return
		}
		fmt.Fprintf(&b, "%s: rounds=%d bcast=%d deliv=%d bytes=%d maxenv=%d\n", name,
			res.Rounds, res.Metrics.Broadcasts, res.Metrics.Deliveries,
			res.Metrics.PayloadBytes, res.Metrics.MaxEnvelopeBytes)
		for i, st := range res.Statuses {
			fmt.Fprintf(&b, "  p%d decided=%v val=%q at=%d crashed=%v last=%d\n",
				i, st.Decided, string(st.Decision), st.DecidedAt, st.Crashed, st.LastRound)
		}
	}

	for _, seed := range []int64{1, 3, 7, 42} {
		props := core.DistinctProposals(5)
		res, err := core.RunES(props, core.RunOpts{
			Policy: &sim.ES{GST: 6, Pre: sim.MS{Seed: seed}},
		})
		dump(fmt.Sprintf("ES n=5 gst=6 seed=%d", seed), res, err)
	}
	for _, seed := range []int64{1, 3, 9} {
		props := core.DistinctProposals(6)
		res, err := core.RunESS(props, core.RunOpts{
			Policy:    &sim.ESS{GST: 8, StableSource: 2, Pre: sim.MS{Seed: seed}},
			MaxRounds: 600,
		})
		dump(fmt.Sprintf("ESS n=6 gst=8 src=2 seed=%d", seed), res, err)
	}
	res, err := core.RunES(core.DistinctProposals(4), core.RunOpts{
		Policy:  &sim.ES{GST: 8, Pre: sim.MS{Seed: 42}},
		Crashes: map[int]int{0: 3},
	})
	dump("ES n=4 crash0@3 seed=42", res, err)
	res, err = core.RunES(core.DistinctProposals(32), core.RunOpts{
		Policy: &sim.ES{GST: 4, Pre: sim.MS{Seed: 5}},
	})
	dump("ES n=32 gst=4 seed=5", res, err)
	res, err = core.RunOmega(core.DistinctProposals(5), func(i int) core.LeaderOracle {
		return func(round int) bool { return i == 0 }
	}, core.RunOpts{Policy: &sim.ESS{GST: 6, StableSource: 0, Pre: sim.MS{Seed: 11}}})
	dump("Omega n=5 seed=11", res, err)

	ops := []weakset.ScheduledOp{
		{Proc: 0, Round: 1, Kind: weakset.OpAdd, Value: values.Num(1)},
		{Proc: 2, Round: 3, Kind: weakset.OpAdd, Value: values.Num(2)},
		{Proc: 1, Round: 5, Kind: weakset.OpGet},
	}
	wres, err := weakset.RunMS(5, ops, &sim.MS{Seed: 4, MaxDelay: 3}, 80, nil)
	if err != nil {
		fmt.Fprintln(&b, "weakset ERR", err)
	} else {
		for _, r := range wres.CompletedAdds() {
			fmt.Fprintf(&b, "weakset add %q enq=%d start=%d done=%d\n", string(r.Value), r.Enqueued, r.Started, r.Completed)
		}
		fmt.Fprintf(&b, "weakset sim rounds=%d bytes=%d\n", wres.Sim.Rounds, wres.Sim.Metrics.PayloadBytes)
	}

	props5 := core.DistinctProposals(5)
	cres, err := sim.Run(sim.Config{
		N: 5, Automaton: func(i int) giraf.Automaton { return core.NewES(props5[i]) },
		Policy: &sim.ES{GST: 6, Pre: sim.MS{Seed: 1}}, MaxRounds: 250, CompactInboxes: true,
	})
	dump("ES n=5 compact seed=1", cres, err)
	return b.String()
}
