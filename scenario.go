package anonconsensus

import (
	"errors"
	"fmt"
	"strings"

	"anonconsensus/internal/env"
)

// ErrAllCrashed is returned when a crash schedule eventually stops every
// process in the ensemble: with no correct process, the Termination
// guarantee is void (a process with a late crash round might still decide
// before it stops, but nothing promises any decision at all), so the
// configuration is rejected at validation time instead of silently running
// out a real-time transport's whole timeout. Any schedule that leaves at
// least one process alive is accepted — the paper's algorithms tolerate
// any number of crashes f ≤ n−1.
var ErrAllCrashed = errors.New("anonconsensus: crash schedule stops every process, decisions are impossible")

// Partition is one round-ranged network partition: for rounds r with
// From ≤ r < Until, messages of round r do not cross the cut. The ring of
// processes is split into the blocks [0, Cut) and [Cut, n); processes
// inside a block communicate normally, processes in different blocks
// cannot hear each other until the partition heals. Until = 0 means the
// partition never heals.
//
// Partitioned messages are lost, not queued: a partition violates the
// model's reliable-broadcast assumption, and healing restores
// connectivity, not history. Because the algorithms rebroadcast their
// whole state every round, information flow resumes on its own after a
// heal — but decisions made during the partition stand, so a long
// partition can split an anonymous ensemble into independently deciding
// blocks (each block is indistinguishable from a smaller complete
// network). That split-brain is exactly the behavior the scenario plane
// exists to demonstrate; see the README scenario cookbook.
//
// Backend fidelity: the simulator and the live transport cut exactly the
// [0,Cut)/[Cut,n) process blocks by message round. The TCP transport can
// only approximate — the hub indexes connections by accept order (nodes
// dial concurrently, so conn index need not equal process index) and
// estimates rounds by wall clock — so on TCP a partition separates the
// right number of nodes for the right duration, but not necessarily the
// exact block membership.
type Partition struct {
	// From is the first affected round (≥ 1).
	From int
	// Until is the first round no longer affected; 0 means never heals.
	Until int
	// Cut splits the ring into [0, Cut) and [Cut, n); 1 ≤ Cut ≤ n−1.
	Cut int
}

// Scenario composes the fault dimensions of a run on top of the synchrony
// environment (WithEnv/WithGST): who crashes when, how lossy and
// duplicative links are, and which partitions come and go. The zero
// Scenario is fault-free. Fault decisions are deterministic hash functions
// of the run seed (WithSeed), so identical specs produce identical fault
// schedules on every backend, and batched runs are byte-identical at any
// parallelism.
type Scenario struct {
	// Crashes maps process index to the round (≥ 1) at which it stops.
	Crashes map[int]int
	// LossPct is the percentage (0–100) of link deliveries that are lost.
	// Loss breaks the reliable-broadcast assumption the algorithms'
	// guarantees rest on; exploring how they degrade is the point.
	LossPct int
	// DupPct is the percentage (0–100) of link deliveries delivered twice,
	// exercising the framework's set-semantics deduplication end to end.
	DupPct int
	// Partitions are the round-ranged cuts; a message is lost if any
	// active partition separates its endpoints.
	Partitions []Partition
}

// clone deep-copies the scenario.
func (s Scenario) clone() Scenario {
	out := s
	if s.Crashes != nil {
		out.Crashes = make(map[int]int, len(s.Crashes))
		for pid, r := range s.Crashes {
			out.Crashes[pid] = r
		}
	}
	if s.Partitions != nil {
		out.Partitions = append([]Partition(nil), s.Partitions...)
	}
	return out
}

// toEnv converts the scenario to the internal representation, seeded with
// the run seed. The one conversion point: validation and fault injection
// both go through it, so a new dimension cannot reach one and miss the
// other.
func (s Scenario) toEnv(seed int64) *env.Scenario {
	out := &env.Scenario{Seed: seed, Crashes: s.Crashes, LossPct: s.LossPct, DupPct: s.DupPct}
	for _, p := range s.Partitions {
		out.Partitions = append(out.Partitions, env.Partition{From: p.From, Until: p.Until, Cut: p.Cut})
	}
	return out
}

// linkFaults converts the scenario's per-link dimensions (loss,
// duplication, partitions — not crashes, which ride InstanceSpec.Crashes)
// to the internal representation, seeded with the run seed. It returns nil
// when no link fault is configured, which keeps scenario-free runs on the
// backends' historical byte-identical paths.
func (s Scenario) linkFaults(seed int64) *env.Scenario {
	if s.LossPct == 0 && s.DupPct == 0 && len(s.Partitions) == 0 {
		return nil
	}
	out := s.toEnv(seed)
	out.Crashes = nil
	return out
}

// validate checks the n-independent structure (option-application time; the
// ensemble-dependent checks run in InstanceSpec.validate). The rules live
// in env.Scenario.Validate — this just converts and re-prefixes errors.
func (s Scenario) validate() error {
	if err := s.toEnv(0).Validate(0); err != nil {
		return fmt.Errorf("anonconsensus: %s", strings.TrimPrefix(err.Error(), "env: "))
	}
	return nil
}

// RandomScenario derives a reproducible worst-case-ish scenario for an
// ensemble of n processes: moderate loss and duplication, one mid-run
// partition that heals, and a staggered crash schedule that spares process
// 0 (so an EnvESS run can keep its default stable source). Identical
// (seed, n) yield identical scenarios — a seeded random adversary for
// scenario sweeps, not a source of nondeterminism.
func RandomScenario(seed int64, n int) Scenario {
	raw := env.RandomAdversary(seed, n)
	out := Scenario{Crashes: raw.Crashes, LossPct: raw.LossPct, DupPct: raw.DupPct}
	for _, p := range raw.Partitions {
		out.Partitions = append(out.Partitions, Partition{From: p.From, Until: p.Until, Cut: p.Cut})
	}
	return out
}
