package anonconsensus_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	ac "anonconsensus"
)

// TestPartitionPreventsConsensusUntilHealed is the scenario plane's core
// property, on the deterministic sim backend. In an anonymous network a
// partitioned block is indistinguishable from a smaller complete network,
// so each block of a never-healing partition independently "solves"
// consensus for its own values — which is precisely the absence of
// system-wide consensus (split-brain divergence). A partition that heals
// before the blocks can commit leaves the ensemble with one agreed value.
func TestPartitionPreventsConsensusUntilHealed(t *testing.T) {
	proposals := []ac.Value{"a", "a", "b", "b"} // distinct value per block
	run := func(p ac.Partition) *ac.Result {
		t.Helper()
		node, err := ac.NewNode(ac.NewSimTransport(),
			ac.WithEnv(ac.EnvES), ac.WithGST(6), ac.WithSeed(3),
			ac.WithPartition(p.From, p.Until, p.Cut))
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		res, err := node.Run(context.Background(), "t", proposals)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	split := run(ac.Partition{From: 1, Until: 0, Cut: 2}) // never heals
	if _, ok := split.Agreed(); ok {
		t.Error("never-healing partition must prevent system-wide consensus")
	}
	decided := map[ac.Value]bool{}
	for _, d := range split.Decisions {
		if d.Decided {
			decided[d.Value] = true
		}
	}
	if len(decided) < 2 {
		t.Errorf("expected split-brain (≥ 2 decided values), got %v", decided)
	}

	healed := run(ac.Partition{From: 1, Until: 2, Cut: 2})
	v, ok := healed.Agreed()
	if !ok {
		t.Fatalf("healed partition must recover consensus: %+v", healed.Decisions)
	}
	if v != "b" {
		t.Errorf("agreed on %q, want the maximum proposal \"b\"", v)
	}
}

func TestLossyESStillDecidesAtLowRates(t *testing.T) {
	// Mild loss delays convergence but the ES run still terminates; the
	// run is deterministic, so this is a pinned behavior, not a flake.
	res, err := ac.Simulate(ac.Config{
		Proposals: []ac.Value{"x", "y", "z"}, GST: 6, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	baseline, _ := res.Agreed()

	node, err := ac.NewNode(ac.NewSimTransport(),
		ac.WithEnv(ac.EnvES), ac.WithGST(6), ac.WithSeed(1), ac.WithLoss(5))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	lossy, err := node.Run(context.Background(), "lossy", []ac.Value{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := lossy.Agreed(); !ok || v != baseline {
		t.Errorf("lossy run agreed=(%q,%v), fault-free baseline %q", v, ok, baseline)
	}
}

func TestDuplicationIsInvisibleToDecisions(t *testing.T) {
	// 100% duplication must not change any decision or round: the inbox
	// set semantics dedup every copy.
	run := func(opts ...ac.Option) *ac.Result {
		t.Helper()
		base := []ac.Option{ac.WithEnv(ac.EnvES), ac.WithGST(5), ac.WithSeed(9)}
		node, err := ac.NewNode(ac.NewSimTransport(), append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		res, err := node.Run(context.Background(), "d", []ac.Value{"p", "q", "r", "s"})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, duped := run(), run(ac.WithDuplication(100))
	if !reflect.DeepEqual(plain.Decisions, duped.Decisions) || plain.Rounds != duped.Rounds {
		t.Errorf("duplication changed the run:\nplain %+v\nduped %+v", plain, duped)
	}
}

func TestWithCrashesEagerValidation(t *testing.T) {
	for name, crashes := range map[string]map[int]int{
		"negative pid": {-1: 3},
		"round zero":   {0: 0},
		"negative rd":  {1: -2},
	} {
		if _, err := ac.NewNode(ac.NewSimTransport(), ac.WithCrashes(crashes)); err == nil {
			t.Errorf("%s: WithCrashes accepted %v", name, crashes)
		}
	}
	// Out-of-range pids surface at spec-build time (Propose), not at run
	// time.
	node, err := ac.NewNode(ac.NewSimTransport(), ac.WithCrashes(map[int]int{7: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	err = node.Propose(context.Background(), "x", []ac.Value{"a", "b"})
	if err == nil || !strings.Contains(err.Error(), "outside [0,2)") {
		t.Errorf("out-of-range crash pid not rejected at Propose: %v", err)
	}
}

func TestAllCrashedRejected(t *testing.T) {
	node, err := ac.NewNode(ac.NewSimTransport(),
		ac.WithCrashes(map[int]int{0: 1, 1: 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	err = node.Propose(context.Background(), "doomed", []ac.Value{"a", "b"})
	if !errors.Is(err, ac.ErrAllCrashed) {
		t.Errorf("err = %v, want ErrAllCrashed", err)
	}
	// The legacy Config path gets the same protection.
	_, err = ac.Simulate(ac.Config{Proposals: []ac.Value{"a"}, Crashes: map[int]int{0: 1}})
	if !errors.Is(err, ac.ErrAllCrashed) {
		t.Errorf("Simulate err = %v, want ErrAllCrashed", err)
	}
}

func TestScenarioOptionValidation(t *testing.T) {
	bad := []ac.Option{
		ac.WithLoss(-1),
		ac.WithLoss(101),
		ac.WithDuplication(400),
		ac.WithPartition(0, 5, 1), // from < 1
		ac.WithPartition(5, 5, 1), // heals before start
		ac.WithPartition(1, 0, 0), // cut separates nobody
		ac.WithScenario(ac.Scenario{LossPct: -4}),
		ac.WithScenario(ac.Scenario{Crashes: map[int]int{0: 0}}),
	}
	for i, opt := range bad {
		if _, err := ac.NewNode(ac.NewSimTransport(), opt); err == nil {
			t.Errorf("option %d accepted", i)
		}
	}
	// Partition cut ≥ n is an ensemble-dependent error: caught at Propose.
	node, err := ac.NewNode(ac.NewSimTransport(), ac.WithPartition(1, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Propose(context.Background(), "p", []ac.Value{"a", "b"}); err == nil {
		t.Error("partition cut ≥ n accepted at Propose")
	}
}

func TestWithScenarioComposesWithWithCrashes(t *testing.T) {
	// WithScenario with nil Crashes must preserve an earlier WithCrashes
	// schedule; a later WithCrashes overrides the scenario's.
	node, err := ac.NewNode(ac.NewSimTransport(),
		ac.WithCrashes(map[int]int{1: 3}),
		ac.WithScenario(ac.Scenario{LossPct: 5}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	res, err := node.Run(context.Background(), "c", []ac.Value{"a", "b", "c"},
		ac.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decisions[1].Crashed {
		t.Error("WithScenario dropped the WithCrashes schedule")
	}
}

func TestRandomScenarioReproducible(t *testing.T) {
	a, b := ac.RandomScenario(7, 8), ac.RandomScenario(7, 8)
	if !reflect.DeepEqual(a, b) {
		t.Error("RandomScenario not reproducible")
	}
	if reflect.DeepEqual(ac.RandomScenario(7, 8), ac.RandomScenario(8, 8)) {
		t.Error("RandomScenario ignores the seed")
	}
	// A random adversary is a valid option set for its ensemble size.
	node, err := ac.NewNode(ac.NewSimTransport(), ac.WithScenario(ac.RandomScenario(7, 8)))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	props := make([]ac.Value, 8)
	for i := range props {
		props[i] = ac.NumValue(int64(i))
	}
	if err := node.Propose(context.Background(), "r", props); err != nil {
		t.Fatalf("random adversary rejected: %v", err)
	}
}

// TestScenarioSweepBatchDeterministic pins the public RunBatch scenario
// sweep: the same grid of scenario'd items yields byte-identical rendered
// results at parallelism 1, 4 and NumCPU.
func TestScenarioSweepBatchDeterministic(t *testing.T) {
	items := func() []ac.BatchItem {
		var out []ac.BatchItem
		for seed := int64(0); seed < 10; seed++ {
			out = append(out, ac.BatchItem{
				Proposals: []ac.Value{"a", "b", "c", "d"},
				Opts: []ac.Option{
					ac.WithSeed(seed),
					ac.WithLoss(int(seed % 4 * 10)),
					ac.WithDuplication(int(seed % 3 * 20)),
					ac.WithPartition(1, 2+int(seed%5), 2),
				},
			})
		}
		return out
	}
	render := func(par int) string {
		results, err := ac.RunBatch(context.Background(), items(),
			ac.WithEnv(ac.EnvES), ac.WithGST(8), ac.WithParallelism(par))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		var b strings.Builder
		for i, r := range results {
			fmt.Fprintf(&b, "item %d rounds=%d", i, r.Rounds)
			for _, d := range r.Decisions {
				fmt.Fprintf(&b, " p%d=%v/%q@%d", d.Proc, d.Decided, string(d.Value), d.Round)
			}
			b.WriteString("\n")
		}
		return b.String()
	}
	want := render(1)
	for _, par := range []int{4, runtime.NumCPU()} {
		if got := render(par); got != want {
			t.Errorf("scenario sweep diverged between parallelism 1 and %d:\nwant:\n%s\ngot:\n%s", par, want, got)
		}
	}
}

// TestScenarioOverTCPTransport exercises the hub-level fault injection end
// to end: 100% duplication doubles every forward, set-semantics dedup keeps
// consensus intact.
func TestScenarioOverTCPTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP round trips in -short mode")
	}
	node, err := ac.NewNode(ac.NewTCPTransport(),
		ac.WithEnv(ac.EnvES), ac.WithGST(2), ac.WithSeed(5),
		ac.WithDuplication(100),
		ac.WithInterval(8*time.Millisecond), ac.WithTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	res, err := node.Run(context.Background(), "tcp-dup", []ac.Value{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Agreed(); !ok {
		t.Fatalf("no agreement under duplication: %+v", res.Decisions)
	}
}

// TestScenarioOverLiveTransport runs the partition split-brain through the
// public live backend.
func TestScenarioOverLiveTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("live round trips in -short mode")
	}
	node, err := ac.NewNode(ac.NewLiveTransport(),
		ac.WithEnv(ac.EnvES), ac.WithGST(0), ac.WithSeed(1),
		ac.WithPartition(1, 0, 2),
		ac.WithInterval(5*time.Millisecond), ac.WithTimeout(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	res, err := node.Run(context.Background(), "live-part", []ac.Value{"a", "a", "z", "z"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Agreed(); ok {
		t.Error("never-healing partition must split the live ensemble too")
	}
}

// TestLegacyConfigCrashRoundZeroStillRuns pins the deprecated Config
// contract: a crash round of 0 ("never initializes" on the simulator) is
// still accepted on the legacy path even though the options API requires
// rounds ≥ 1.
func TestLegacyConfigCrashRoundZeroStillRuns(t *testing.T) {
	res, err := ac.Simulate(ac.Config{
		Proposals: []ac.Value{"a", "b", "c"},
		GST:       4,
		Crashes:   map[int]int{1: 0},
	})
	if err != nil {
		t.Fatalf("legacy round-0 crash rejected: %v", err)
	}
	if !res.Decisions[1].Crashed {
		t.Errorf("process 1 should report crashed: %+v", res.Decisions[1])
	}
	if _, ok := res.Agreed(); !ok {
		t.Errorf("survivors should agree: %+v", res.Decisions)
	}
	// Round-0 entries mean "never crashes" on the real-time backends, so
	// they must not count toward the all-crash fail-fast either.
	if _, err := ac.Simulate(ac.Config{
		Proposals: []ac.Value{"x", "y"}, GST: 4, Crashes: map[int]int{0: 0, 1: 0},
	}); err != nil {
		t.Errorf("legacy all-round-0 schedule rejected: %v", err)
	}
}

// TestHandBuiltSpecScenarioCrashesHonored pins the normalization for specs
// built by hand (not via the options API, which mirrors the schedule into
// Crashes itself): a crash listed only in Scenario.Crashes must reach the
// backend.
func TestHandBuiltSpecScenarioCrashesHonored(t *testing.T) {
	transport := ac.NewSimTransport()
	defer transport.Close()
	res, err := transport.Run(context.Background(), ac.InstanceSpec{
		ID:        "hand-built",
		Proposals: []ac.Value{"a", "b", "c"},
		Env:       ac.EnvES,
		GST:       4,
		Seed:      1,
		Scenario:  ac.Scenario{Crashes: map[int]int{1: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decisions[1].Crashed {
		t.Errorf("scenario-only crash schedule ignored: %+v", res.Decisions[1])
	}
	if _, ok := res.Agreed(); !ok {
		t.Errorf("survivors should agree: %+v", res.Decisions)
	}
}
