package anonconsensus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gateTransport is a controllable fake — each Run blocks until the
// test releases it (or the ctx dies), so tests can hold a chosen number
// of instances in flight.
type gateTransport struct {
	release chan struct{} // one receive releases one Run
	running atomic.Int32
	peak    atomic.Int32
}

func newGateTransport() *gateTransport { return &gateTransport{release: make(chan struct{})} }

func (t *gateTransport) Name() string { return "gate" }

func (t *gateTransport) Close() error { return nil }

func (t *gateTransport) Run(ctx context.Context, spec InstanceSpec) (*Result, error) {
	cur := t.running.Add(1)
	defer t.running.Add(-1)
	for {
		p := t.peak.Load()
		if cur <= p || t.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	select {
	case <-t.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &Result{Decisions: []Decision{{Proc: 0, Decided: true, Value: spec.Proposals[0]}}}, nil
}

// TestNodePoolRunsConcurrently pins the tentpole at the Node layer: with
// WithMaxInFlight(k), k instances are genuinely in flight at once (the
// single-worker node could never exceed 1).
func TestNodePoolRunsConcurrently(t *testing.T) {
	const k = 4
	tr := newGateTransport()
	node, err := NewNode(tr, WithMaxInFlight(k))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	for i := 0; i < k; i++ {
		if err := node.Propose(context.Background(), fmt.Sprintf("i%d", i), props(1)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.running.Load() < k {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d instances in flight", tr.running.Load(), k)
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < k; i++ {
		tr.release <- struct{}{}
	}
	for i := 0; i < k; i++ {
		if _, err := node.Wait(context.Background(), fmt.Sprintf("i%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	s := node.Stats()
	if s.PeakInFlight != k || s.MaxInFlight != k {
		t.Fatalf("PeakInFlight=%d MaxInFlight=%d, want %d and %d", s.PeakInFlight, s.MaxInFlight, k, k)
	}
	if s.Admitted != k || s.Completed != k || s.InFlight != 0 {
		t.Fatalf("Admitted=%d Completed=%d InFlight=%d, want %d, %d, 0", s.Admitted, s.Completed, s.InFlight, k, k)
	}
	if s.QueueWait <= 0 {
		t.Fatal("QueueWait not recorded")
	}
}

// TestNodeStressConcurrentUse is the -race stress satellite: many
// goroutines hammer Propose/Wait/Forget across several WithMaxInFlight
// settings; every proposed instance must produce exactly one outcome
// (no lost, no duplicated EventInstanceDone) and shutdown mid-flight
// must be clean.
func TestNodeStressConcurrentUse(t *testing.T) {
	for _, k := range []int{1, 2, 8} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			node, err := NewNode(NewSimTransport(),
				WithEnv(EnvES), WithGST(2), WithSeed(7), WithMaxInFlight(k))
			if err != nil {
				t.Fatal(err)
			}

			const producers, perProducer = 8, 25
			done := make(map[string]int)
			var doneMu sync.Mutex
			feedDrained := make(chan struct{})
			go func() {
				defer close(feedDrained)
				for ev := range node.Decisions() {
					if ev.Kind == EventInstanceDone {
						doneMu.Lock()
						done[ev.Instance]++
						doneMu.Unlock()
					}
				}
			}()

			var wg sync.WaitGroup
			var succeeded atomic.Int64
			for p := 0; p < producers; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perProducer; i++ {
						id := fmt.Sprintf("p%d-i%d", p, i)
						if err := node.Propose(context.Background(), id, props(1, 2, 3), WithSeed(int64(p*1000+i))); err != nil {
							t.Errorf("%s: %v", id, err)
							return
						}
						succeeded.Add(1)
						// Alternate consumption styles: Wait (consumes) and
						// feed-driven Forget.
						if i%2 == 0 {
							if _, err := node.Wait(context.Background(), id); err != nil {
								t.Errorf("%s: %v", id, err)
							}
						} else {
							for !node.Forget(id) {
								time.Sleep(100 * time.Microsecond)
							}
						}
					}
				}()
			}
			wg.Wait()
			if err := node.Close(); err != nil {
				t.Fatal(err)
			}
			<-feedDrained

			s := node.Stats()
			if s.Completed != succeeded.Load() {
				t.Fatalf("Completed=%d, want %d", s.Completed, succeeded.Load())
			}
			doneMu.Lock()
			defer doneMu.Unlock()
			for id, count := range done {
				if count != 1 {
					t.Fatalf("instance %s emitted %d EventInstanceDone events", id, count)
				}
			}
		})
	}
}

// TestNodeCloseMidFlight pins clean shutdown with a full pipeline: some
// instances running, some queued. Every one must still resolve (result
// or ErrNodeClosed) — none may hang or leak.
func TestNodeCloseMidFlight(t *testing.T) {
	tr := newGateTransport()
	node, err := NewNode(tr, WithMaxInFlight(2), WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	const total = 6 // 2 running + 4 queued
	for i := 0; i < total; i++ {
		if err := node.Propose(context.Background(), fmt.Sprintf("i%d", i), props(1)); err != nil {
			t.Fatal(err)
		}
	}
	closed := make(chan error, 1)
	go func() { closed <- node.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung with instances in flight")
	}
	for i := 0; i < total; i++ {
		_, err := node.Wait(context.Background(), fmt.Sprintf("i%d", i))
		if err == nil || errors.Is(err, context.Canceled) {
			continue // the running pair was cancelled via the node's stop
		}
		if !errors.Is(err, ErrNodeClosed) {
			t.Fatalf("i%d: unexpected outcome: %v", i, err)
		}
	}
}

// TestAdmissionFastReject pins the token bucket's fast-reject contract:
// burst proposals are admitted, the next is shed with ErrOverloaded,
// nothing about the shed proposal survives (its ID is immediately
// reusable), and the counters record the split.
func TestAdmissionFastReject(t *testing.T) {
	tr := newGateTransport()
	// 1 token/hour after a burst of 3: the bucket will not refill within
	// the test.
	node, err := NewNode(tr, WithMaxInFlight(3), WithAdmission(1.0/3600, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	for i := 0; i < 3; i++ {
		if err := node.Propose(context.Background(), fmt.Sprintf("i%d", i), props(1)); err != nil {
			t.Fatalf("proposal %d inside burst rejected: %v", i, err)
		}
	}
	err = node.Propose(context.Background(), "shed", props(1))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	// The shed ID left no trace: re-proposing it fails on admission, not
	// on duplication.
	if err := node.Propose(context.Background(), "shed", props(1)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed ID not released: %v", err)
	}
	s := node.Stats()
	if s.Admitted != 3 || s.Rejected != 2 {
		t.Fatalf("Admitted=%d Rejected=%d, want 3 and 2", s.Admitted, s.Rejected)
	}
	for i := 0; i < 3; i++ {
		tr.release <- struct{}{}
	}
}

// TestAdmissionQueueFullRejects pins the WithQueueDepth satellite: under
// fast-reject admission a full instance queue returns ErrOverloaded
// instead of silently blocking Propose.
func TestAdmissionQueueFullRejects(t *testing.T) {
	tr := newGateTransport()
	node, err := NewNode(tr, WithQueueDepth(1), WithAdmission(1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	// First proposal occupies the single worker, second fills the
	// 1-deep queue; the third must be shed, not block.
	if err := node.Propose(context.Background(), "running", props(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.running.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the first instance")
		}
		time.Sleep(time.Millisecond)
	}
	if err := node.Propose(context.Background(), "queued", props(1)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = node.Propose(context.Background(), "shed", props(1))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue: want ErrOverloaded, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("fast-reject blocked")
	}
	if got := node.Stats().QueueDepth; got != 1 {
		t.Fatalf("Stats().QueueDepth = %d, want 1", got)
	}
	tr.release <- struct{}{}
	tr.release <- struct{}{}
}

// TestAdmissionWaitBlocks pins the blocking mode: an empty bucket makes
// Propose wait for refill rather than reject, and the wait honours ctx.
func TestAdmissionWaitBlocks(t *testing.T) {
	tr := newGateTransport()
	// 50 tokens/sec, burst 1: after the burst, a token arrives in ~20ms.
	node, err := NewNode(tr, WithMaxInFlight(2), WithAdmission(50, 1), WithAdmissionWait())
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Propose(context.Background(), "a", props(1)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := node.Propose(context.Background(), "b", props(1)); err != nil {
		t.Fatalf("blocking admission rejected: %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("second proposal did not wait for a token")
	}
	// A cancelled ctx aborts the wait.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err = node.Propose(ctx, "c", props(1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ctx deadline error from admission wait, got %v", err)
	}
	tr.release <- struct{}{}
	tr.release <- struct{}{}
}

// TestServiceOptionValidation pins the new options' eager validation.
func TestServiceOptionValidation(t *testing.T) {
	for name, opt := range map[string]Option{
		"zero max in-flight": WithMaxInFlight(0),
		"zero queue depth":   WithQueueDepth(0),
		"zero rate":          WithAdmission(0, 1),
		"zero burst":         WithAdmission(1, 0),
	} {
		if _, err := NewNode(NewSimTransport(), opt); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestEventDropCounting pins the lossy-feed satellite: with no consumer
// on Decisions(), events beyond the bounded backlog are dropped AND
// counted, where before they vanished silently.
func TestEventDropCounting(t *testing.T) {
	node, err := NewNode(NewSimTransport(), WithEnv(EnvES), WithGST(0))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	// Each instance emits ≥ 3 events (started, ≥1 decision, done) but the
	// pump drains 128 into the channel buffer; overflow the 1024-slot
	// backlog with margin.
	const instances = 600
	for i := 0; i < instances; i++ {
		id := fmt.Sprintf("i%d", i)
		if err := node.Propose(context.Background(), id, props(1, 2)); err != nil {
			t.Fatal(err)
		}
		if _, err := node.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	if got := node.Stats().EventsDropped; got == 0 {
		t.Fatal("overflowing the unconsumed feed counted no drops")
	}
}

// TestSimPoolDeterminism pins that the sim transport's engine pool never
// leaks state into results: a pooled transport run hot (engines recycled across
// many concurrent instances) produces byte-identical decisions to the
// unpooled fresh-engine baseline for every spec.
func TestSimPoolDeterminism(t *testing.T) {
	specs := make([]InstanceSpec, 40)
	for i := range specs {
		specs[i] = InstanceSpec{
			ID:        fmt.Sprintf("s%d", i),
			Proposals: props(int64(i), int64(i+1), int64(i+2)),
			Env:       EnvES,
			GST:       i % 7,
			Seed:      int64(i * 13),
		}
	}
	baseline := newSimTransportUnpooled()
	defer baseline.Close()
	want := make([]*Result, len(specs))
	for i, spec := range specs {
		res, err := baseline.Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	pooled := NewSimTransport()
	defer pooled.Close()
	// Two hot passes: the second is guaranteed to hit recycled engines.
	for pass := 0; pass < 2; pass++ {
		var wg sync.WaitGroup
		got := make([]*Result, len(specs))
		errs := make([]error, len(specs))
		for i, spec := range specs {
			i, spec := i, spec
			wg.Add(1)
			go func() {
				defer wg.Done()
				got[i], errs[i] = pooled.Run(context.Background(), spec)
			}()
		}
		wg.Wait()
		for i := range specs {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			if fmt.Sprintf("%+v", got[i].Decisions) != fmt.Sprintf("%+v", want[i].Decisions) ||
				got[i].Rounds != want[i].Rounds {
				t.Fatalf("pass %d spec %d: pooled engines diverged from fresh baseline\npooled: %+v\nfresh:  %+v",
					pass, i, got[i], want[i])
			}
		}
	}
}

// TestTCPMuxNodeService is the acceptance pin for the multiplexed TCP
// plane under -race: a Node with a worker pool drives many concurrent
// instances through NewTCPMuxTransport — many epochs, ONE hub, one
// persistent connection per process slot — and overload is shed with
// ErrOverloaded rather than queued without bound.
func TestTCPMuxNodeService(t *testing.T) {
	node, err := NewNode(NewTCPMuxTransport(),
		WithEnv(EnvES), WithInterval(2*time.Millisecond), WithTimeout(20*time.Second),
		WithMaxInFlight(8), WithQueueDepth(16), WithAdmission(1.0/3600, 16))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	const instances = 16 // == burst: all admitted, the 17th is shed
	var wg sync.WaitGroup
	for i := 0; i < instances; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := fmt.Sprintf("mux-%d", i)
			if err := node.Propose(context.Background(), id, props(int64(i), int64(i+100), int64(i+200))); err != nil {
				t.Errorf("%s: %v", id, err)
				return
			}
			res, err := node.Wait(context.Background(), id)
			if err != nil {
				t.Errorf("%s: %v", id, err)
				return
			}
			if _, ok := res.Agreed(); !ok {
				t.Errorf("%s: agreement violated: %+v", id, res.Decisions)
			}
		}()
	}
	wg.Wait()
	// The bucket is drained and refills at 1/hour: the next proposal is
	// overload and must be shed.
	if err := node.Propose(context.Background(), "overflow", props(1, 2, 3)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("drained bucket: want ErrOverloaded, got %v", err)
	}
	s := node.Stats()
	if s.Admitted != instances || s.Rejected != 1 {
		t.Fatalf("Admitted=%d Rejected=%d, want %d and 1", s.Admitted, s.Rejected, instances)
	}
	if s.PeakInFlight < 2 {
		t.Fatalf("PeakInFlight=%d: instances never overlapped", s.PeakInFlight)
	}
}

// TestTCPMuxRejectsLinkFaults pins the documented limitation: fault
// scenarios cannot be realized on shared connections and are refused
// loudly, steering callers to NewTCPTransport.
func TestTCPMuxRejectsLinkFaults(t *testing.T) {
	tr := NewTCPMuxTransport()
	defer tr.Close()
	node, err := NewNode(tr, WithEnv(EnvES), WithLoss(10))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Propose(context.Background(), "faulty", props(1, 2)); err == nil {
		if _, werr := node.Wait(context.Background(), "faulty"); werr == nil {
			t.Fatal("tcp-mux accepted a link-fault scenario")
		}
	}
}

// TestServiceThroughputScales is the mux-smoke scaling assertion: on the
// timer-bound live backend, a k-wide pool must clearly outrun the
// sequential node on the same workload (overlapping round-timer waits —
// which is why this holds on any core count).
func TestServiceThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained-load test; run via make mux-smoke")
	}
	const instances = 60
	run := func(k int) time.Duration {
		node, err := NewNode(NewLiveTransport(),
			WithEnv(EnvES), WithGST(0), WithInterval(2*time.Millisecond),
			WithTimeout(30*time.Second), WithMaxInFlight(k), WithQueueDepth(instances))
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < instances; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				id := fmt.Sprintf("t%d", i)
				if err := node.Propose(context.Background(), id, props(1, 2, 3)); err != nil {
					t.Errorf("%s: %v", id, err)
					return
				}
				if _, err := node.Wait(context.Background(), id); err != nil {
					t.Errorf("%s: %v", id, err)
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	}
	seq := run(1)
	pooled := run(8)
	t.Logf("sequential: %v, k=8: %v (%.1fx)", seq, pooled, float64(seq)/float64(pooled))
	if pooled*2 > seq {
		t.Fatalf("throughput did not scale with the pool: sequential %v vs k=8 %v (want ≥ 2x)", seq, pooled)
	}
}
