package anonconsensus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countInstanceEvents returns the number of events one completed
// instance emits: Started, one Decision per decided process, Done.
func countInstanceEvents(res *Result) int64 {
	n := int64(2)
	for _, d := range res.Decisions {
		if d.Decided {
			n++
		}
	}
	return n
}

// TestEventAccountingThroughClose pins the full event conservation law:
// after Close and a complete drain of Decisions(), every event ever
// emitted was either delivered or counted in EventsDropped. Before the
// fix, the pump's shutdown paths discarded events without counting them,
// so emitted > delivered + dropped.
func TestEventAccountingThroughClose(t *testing.T) {
	node, err := NewNode(NewSimTransport(), WithEnv(EnvES), WithGST(0))
	if err != nil {
		t.Fatal(err)
	}
	// No consumer while the instances run: the 128-slot channel and
	// 1024-slot backlog fill, then Close's drain hits the lossy paths.
	var emitted int64
	const instances = 500
	for i := 0; i < instances; i++ {
		id := fmt.Sprintf("i%d", i)
		if err := node.Propose(context.Background(), id, props(1, 2)); err != nil {
			t.Fatal(err)
		}
		res, err := node.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		emitted += countInstanceEvents(res)
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	var delivered int64
	for range node.Decisions() {
		delivered++
	}
	dropped := node.Stats().EventsDropped
	if delivered+dropped != emitted {
		t.Fatalf("event conservation violated: emitted %d, delivered %d + dropped %d = %d",
			emitted, delivered, dropped, delivered+dropped)
	}
	if dropped == 0 {
		t.Fatal("test exercised no lossy path (backlog never overflowed)")
	}
}

// TestNeverStartedInstanceEmitsDoneOnly pins the Started/Done pairing
// contract: an instance Close drains off the queue before any worker
// picked it up emits exactly one event — EventInstanceDone carrying
// ErrNodeClosed — and no EventInstanceStarted.
func TestNeverStartedInstanceEmitsDoneOnly(t *testing.T) {
	tr := newGateTransport()
	node, err := NewNode(tr) // one worker
	if err != nil {
		t.Fatal(err)
	}
	events := make(map[string][]Event)
	var evWG sync.WaitGroup
	evWG.Add(1)
	go func() {
		defer evWG.Done()
		for ev := range node.Decisions() {
			events[ev.Instance] = append(events[ev.Instance], ev)
		}
	}()
	if err := node.Propose(context.Background(), "running", props(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.running.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the first instance")
		}
		time.Sleep(time.Millisecond)
	}
	// This one sits on the queue until Close fails it.
	if err := node.Propose(context.Background(), "drained", props(1)); err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	evWG.Wait()
	got := events["drained"]
	if len(got) != 1 || got[0].Kind != EventInstanceDone {
		t.Fatalf("never-started instance emitted %v, want exactly one Done", got)
	}
	if !errors.Is(got[0].Err, ErrNodeClosed) {
		t.Fatalf("drained instance's Done carries %v, want ErrNodeClosed", got[0].Err)
	}
	for _, ev := range got {
		if ev.Kind == EventInstanceStarted {
			t.Fatal("never-started instance emitted EventInstanceStarted")
		}
	}
}

// TestEnqueueAbortCountedRejected pins the admission accounting fix:
// under WithAdmissionWait, a proposal that spends its token but aborts
// while blocked on a full queue must land in Rejected — before the fix
// it was counted neither Admitted nor Rejected.
func TestEnqueueAbortCountedRejected(t *testing.T) {
	tr := newGateTransport()
	node, err := NewNode(tr, WithQueueDepth(1), WithAdmission(1000, 1000), WithAdmissionWait())
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Propose(context.Background(), "running", props(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.running.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the first instance")
		}
		time.Sleep(time.Millisecond)
	}
	if err := node.Propose(context.Background(), "queued", props(1)); err != nil {
		t.Fatal(err)
	}
	// The queue is full and blocking admission never fast-rejects: this
	// Propose parks on the enqueue until its ctx dies.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err = node.Propose(ctx, "aborted", props(1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ctx deadline error from enqueue abort, got %v", err)
	}
	s := node.Stats()
	if s.Admitted != 2 || s.Rejected != 1 {
		t.Fatalf("Admitted=%d Rejected=%d, want 2 and 1 (abort must count as rejected)", s.Admitted, s.Rejected)
	}
	// The aborted ID left the session: it is immediately reusable.
	if _, err := node.Wait(context.Background(), "aborted"); err == nil {
		t.Fatal("aborted instance still registered")
	}
	tr.release <- struct{}{}
	tr.release <- struct{}{}
}

// TestStatsInvariantsStress hammers one fast-reject node from many
// goroutines and checks the accounting invariants at quiescence:
//
//   - every Propose lands in exactly one of Admitted or Rejected (the
//     specs are valid and the node stays open, so there are no
//     pre-admission errors);
//   - Completed ≤ Admitted throughout, equal once all work drained;
//   - event conservation: emitted == delivered + EventsDropped.
//
// Run under -race this also shakes out data races between Propose,
// Wait, Stats, the workers and the event pump.
func TestStatsInvariantsStress(t *testing.T) {
	node, err := NewNode(NewSimTransport(), WithEnv(EnvES), WithGST(0),
		WithMaxInFlight(4), WithQueueDepth(4), WithAdmission(1e6, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	var delivered int64
	var evWG sync.WaitGroup
	evWG.Add(1)
	go func() {
		defer evWG.Done()
		for range node.Decisions() {
			delivered++
		}
	}()

	const goroutines = 8
	const perG = 60
	var accepted, overloaded int64
	ids := make(chan string, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := fmt.Sprintf("g%d-i%d", g, i)
				err := node.Propose(context.Background(), id, props(int64(g), int64(i)))
				switch {
				case err == nil:
					atomic.AddInt64(&accepted, 1)
					ids <- id
				case errors.Is(err, ErrOverloaded):
					atomic.AddInt64(&overloaded, 1)
				default:
					t.Errorf("unexpected Propose error: %v", err)
				}
				// Completed ≤ Admitted is a quiescence invariant (admitted
				// is counted just after the enqueue, so a racing worker can
				// finish an instance a beat before its proposer's counter
				// increment); occupancy bounds hold at every instant.
				if s := node.Stats(); s.InFlight > s.MaxInFlight || s.Queued > s.QueueDepth {
					t.Errorf("occupancy out of bounds: %+v", s)
				}
			}
		}(g)
	}
	wg.Wait()
	close(ids)
	var emitted int64
	for id := range ids {
		res, err := node.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("accepted instance %q failed: %v", id, err)
		}
		emitted += countInstanceEvents(res)
	}
	s := node.Stats()
	if s.Admitted != accepted || s.Rejected != overloaded {
		t.Errorf("Admitted=%d Rejected=%d, want %d and %d", s.Admitted, s.Rejected, accepted, overloaded)
	}
	if s.Admitted+s.Rejected != goroutines*perG {
		t.Errorf("accounting leak: Admitted+Rejected = %d, want %d", s.Admitted+s.Rejected, goroutines*perG)
	}
	if s.Completed != s.Admitted {
		t.Errorf("at quiescence Completed = %d, want Admitted = %d", s.Completed, s.Admitted)
	}
	if s.InFlight != 0 || s.Queued != 0 {
		t.Errorf("quiescent node reports InFlight=%d Queued=%d", s.InFlight, s.Queued)
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	evWG.Wait()
	dropped := node.Stats().EventsDropped
	if delivered+dropped != emitted {
		t.Errorf("event conservation violated: emitted %d, delivered %d + dropped %d",
			emitted, delivered, dropped)
	}
}
