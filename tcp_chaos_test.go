package anonconsensus

import (
	"context"
	"testing"
	"time"

	"anonconsensus/internal/netchaos"
)

// TestTCPChaosSeveredNodeRecovers is the acceptance property for the
// resilient live plane: one node's hub link is blacked out mid-run by a
// seeded chaos proxy, and the instance still reaches Agreement and
// Validity — with the outage visible as Reconnects ≥ 1 and
// ReplayedFrames > 0 in the result's robustness counters.
func TestTCPChaosSeveredNodeRecovers(t *testing.T) {
	tr := NewTCPTransport().(*tcpTransport)
	defer tr.Close()

	// Node 1 dials through a proxy whose schedule cuts the link just as
	// rounds begin and holds it down for several round-lengths, so the
	// resumption has peer broadcasts to replay. Everyone else dials direct.
	tr.dialVia = func(node int, hubAddr string) (string, func()) {
		if node != 1 {
			return hubAddr, nil
		}
		p, err := netchaos.NewProxy(hubAddr, netchaos.Schedule{
			{Kind: netchaos.Blackout, At: 40 * time.Millisecond, Dur: 100 * time.Millisecond},
		})
		if err != nil {
			t.Fatalf("chaos proxy: %v", err)
		}
		return p.Addr(), func() { _ = p.Close() }
	}

	props := []Value{NumValue(11), NumValue(47), NumValue(23), NumValue(5)}
	res, err := tr.Run(context.Background(), InstanceSpec{
		ID:        "chaos-sever",
		Proposals: props,
		Env:       EnvES,
		Interval:  12 * time.Millisecond,
		Timeout:   30 * time.Second,
		Reconnect: ReconnectPolicy{MaxAttempts: 20, BaseDelay: 20 * time.Millisecond, MaxDelay: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Agreed()
	if !ok {
		t.Fatalf("agreement violated under chaos: %+v", res.Decisions)
	}
	valid := false
	for _, p := range props {
		if p == v {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("validity violated: decided %q, not among proposals", string(v))
	}
	if res.Robustness.Reconnects < 1 {
		t.Errorf("Robustness.Reconnects = %d, want ≥ 1", res.Robustness.Reconnects)
	}
	if res.Robustness.ReplayedFrames == 0 {
		t.Error("Robustness.ReplayedFrames = 0; the resumption should have replayed the outage gap")
	}
}

// TestTCPChaosMinorityCutOffDegradesGracefully pins the degradation
// contract: a node whose link never heals exhausts its reconnect budget
// and becomes crash-equivalent — the siblings still decide, the run
// returns a clean Result (no error, no sibling abort), and the failed
// dials are on the counters.
func TestTCPChaosMinorityCutOffDegradesGracefully(t *testing.T) {
	tr := NewTCPTransport().(*tcpTransport)
	defer tr.Close()

	tr.dialVia = func(node int, hubAddr string) (string, func()) {
		if node != 1 {
			return hubAddr, nil
		}
		p, err := netchaos.NewProxy(hubAddr, netchaos.Schedule{
			{Kind: netchaos.Blackout, At: 40 * time.Millisecond}, // Dur 0: never heals
		})
		if err != nil {
			t.Fatalf("chaos proxy: %v", err)
		}
		return p.Addr(), func() { _ = p.Close() }
	}

	props := []Value{NumValue(1), NumValue(2), NumValue(3)}
	res, err := tr.Run(context.Background(), InstanceSpec{
		ID:        "chaos-cutoff",
		Proposals: props,
		Env:       EnvES,
		Interval:  12 * time.Millisecond,
		Timeout:   30 * time.Second,
		Reconnect: ReconnectPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("permanent minority outage must not error the run: %v", err)
	}
	if res.Decisions[1].Decided {
		t.Error("cut-off node claims a decision")
	}
	decided := map[Value]bool{}
	for i, d := range res.Decisions {
		if i == 1 {
			continue
		}
		if !d.Decided {
			t.Fatalf("survivor %d undecided; a cut-off minority must not stall the rest", i)
		}
		decided[d.Value] = true
	}
	if len(decided) != 1 {
		t.Fatalf("survivors disagree: %+v", res.Decisions)
	}
	if res.Robustness.FailedDials < 3 {
		t.Errorf("Robustness.FailedDials = %d, want ≥ 3 (every redial hit the blackout)", res.Robustness.FailedDials)
	}
}
