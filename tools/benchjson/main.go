// Command benchjson converts `go test -bench` output into the repository's
// benchmark-trajectory file (BENCH_consensus.json by default). Each
// invocation appends one labelled run, so the file accumulates a history
// of measurements across PRs:
//
//	go test -run '^$' -bench . -benchmem -benchtime 10x . | \
//	    go run ./tools/benchjson -label "my change"
//
// The Makefile `bench` target wraps exactly that pipeline.
//
// Compare mode gates regressions instead of appending:
//
//	benchjson -compare old.json new.json -threshold 20
//
// compares the last recorded run of each trajectory file benchmark by
// benchmark and exits nonzero when any ns/op regressed by more than the
// threshold percentage (default 20). The Makefile `bench-smoke` target
// wires it against BENCH_consensus.json so the trajectory cannot silently
// regress; pick the threshold with the noise of the comparison machine in
// mind.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one benchmark line.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "decisions/sec"
	// recorded as "decisions_per_sec"), keyed by their sanitized unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchRun is one labelled invocation of the suite.
type BenchRun struct {
	Label   string        `json:"label"`
	Date    string        `json:"date"`
	GoOS    string        `json:"goos"`
	GoArch  string        `json:"goarch"`
	CPU     string        `json:"cpu,omitempty"`
	Results []BenchResult `json:"results"`
}

// File is the trajectory file layout.
type File struct {
	Suite string     `json:"suite"`
	Note  string     `json:"note"`
	Runs  []BenchRun `json:"runs"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// metricKey sanitizes a benchmark unit into a JSON-friendly key:
// "decisions/sec" → "decisions_per_sec".
func metricKey(unit string) string {
	unit = strings.ReplaceAll(unit, "/", "_per_")
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, unit)
}

// parseBenchLine parses one `go test -bench` result line. Beyond the
// standard ns/op, B/op and allocs/op columns it accepts any
// `<value> <unit>` pair — custom b.ReportMetric units land in Metrics —
// so the order go test prints metrics in (custom units sort among the
// standard ones) does not matter.
func parseBenchLine(line string) (BenchResult, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return BenchResult{}, false
	}
	name := strings.TrimPrefix(m[1], "Benchmark")
	// Strip the -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, _ := strconv.Atoi(m[2])
	res := BenchResult{Name: name, Iterations: iters}
	sawNs := false
	fields := strings.Fields(m[3])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			sawNs = true
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[metricKey(fields[i+1])] = v
		}
	}
	if !sawNs {
		return BenchResult{}, false
	}
	return res, true
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-compare" {
		os.Exit(runCompare(os.Args[2:]))
	}
	label := flag.String("label", "", "label for this run (required)")
	out := flag.String("out", "BENCH_consensus.json", "trajectory file to append to")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}

	run := BenchRun{
		Label:  *label,
		Date:   time.Now().UTC().Format("2006-01-02"),
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			run.CPU = strings.TrimSpace(cpu)
			continue
		}
		res, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		run.Results = append(run.Results, res)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(run.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	file := File{
		Suite: "anonconsensus T1–T10/F1–F3 experiment suite + hot-path micro-benchmarks",
		Note:  "Append runs with `make bench` (or tools/benchjson); do not edit results by hand.",
	}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is unreadable: %v\n", *out, err)
			os.Exit(1)
		}
	}
	file.Runs = append(file.Runs, run)
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: appended %d results to %s (run %q)\n", len(run.Results), *out, *label)
}

// runCompare implements `-compare old.json new.json [-threshold pct]`. It
// reads the last run of each trajectory file and reports, benchmark by
// benchmark, the ns/op delta; any regression beyond the threshold makes
// the exit status nonzero. Benchmarks present on only one side are
// reported as ADDED/REMOVED and summarized, never failed on, so suites
// can grow and benchmarks can be renamed without breaking the gate.
func runCompare(args []string) int {
	threshold := 20.0
	var files []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-threshold" || a == "--threshold":
			i++
			if i >= len(args) {
				fmt.Fprintln(os.Stderr, "benchjson: -threshold needs a value")
				return 2
			}
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || v < 0 {
				fmt.Fprintf(os.Stderr, "benchjson: bad threshold %q\n", args[i])
				return 2
			}
			threshold = v
		case strings.HasPrefix(a, "-threshold="):
			v, err := strconv.ParseFloat(strings.TrimPrefix(a, "-threshold="), 64)
			if err != nil || v < 0 {
				fmt.Fprintf(os.Stderr, "benchjson: bad threshold %q\n", a)
				return 2
			}
			threshold = v
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "benchjson: unknown compare flag %q\n", a)
			return 2
		default:
			files = append(files, a)
		}
	}
	if len(files) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json [-threshold pct]")
		return 2
	}
	oldRun, err := lastRun(files[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newRun, err := lastRun(files[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	fmt.Printf("comparing %q (old: %s) vs %q (new: %s), threshold %.0f%%\n",
		oldRun.Label, files[0], newRun.Label, files[1], threshold)
	regressions, added, removed := compareRuns(os.Stdout, oldRun, newRun, threshold)
	if added+removed > 0 {
		// Additions and removals are informational, never failures: the
		// gate must survive benchmark renames and suite growth.
		fmt.Printf("benchjson: %d benchmark(s) added, %d removed (not gated)\n", added, removed)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%%\n", regressions, threshold)
		return 1
	}
	fmt.Println("benchjson: no regressions beyond threshold")
	return 0
}

// compareRuns reports the benchmark-by-benchmark ns/op delta of two runs
// to w. Benchmarks present on only one side are reported as ADDED or
// REMOVED and counted separately from regressions — a renamed benchmark
// shows up as one of each and never fails the gate.
func compareRuns(w io.Writer, oldRun, newRun BenchRun, threshold float64) (regressions, added, removed int) {
	oldBy := make(map[string]BenchResult, len(oldRun.Results))
	for _, r := range oldRun.Results {
		oldBy[r.Name] = r
	}
	seen := make(map[string]bool, len(newRun.Results))
	for _, nr := range newRun.Results {
		seen[nr.Name] = true
		or, ok := oldBy[nr.Name]
		if !ok {
			added++
			fmt.Fprintf(w, "  %-40s ADDED (%.0f ns/op, no baseline)\n", nr.Name, nr.NsPerOp)
			continue
		}
		if or.NsPerOp <= 0 {
			continue
		}
		delta := (nr.NsPerOp - or.NsPerOp) / or.NsPerOp * 100
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "  %-40s %12.0f → %12.0f ns/op  %+6.1f%%  %s\n", nr.Name, or.NsPerOp, nr.NsPerOp, delta, verdict)
		// Custom metrics (b.ReportMetric units such as p99_ms) are shown
		// for context but never gated: whether up is good depends on the
		// unit, and only ns/op has a universally safe direction.
		for _, key := range sortedMetricKeys(nr.Metrics) {
			ov, ok := or.Metrics[key]
			if !ok || ov == 0 {
				continue
			}
			nv := nr.Metrics[key]
			fmt.Fprintf(w, "  %-40s %12.2f → %12.2f %s  %+6.1f%%  (not gated)\n",
				"", ov, nv, key, (nv-ov)/ov*100)
		}
	}
	for _, or := range oldRun.Results {
		if !seen[or.Name] {
			removed++
			fmt.Fprintf(w, "  %-40s REMOVED (was %.0f ns/op)\n", or.Name, or.NsPerOp)
		}
	}
	return regressions, added, removed
}

// sortedMetricKeys returns a metric map's keys in stable order.
func sortedMetricKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lastRun loads a trajectory file and returns its most recent run.
func lastRun(path string) (BenchRun, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchRun{}, err
	}
	var file File
	if err := json.Unmarshal(data, &file); err != nil {
		return BenchRun{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(file.Runs) == 0 {
		return BenchRun{}, fmt.Errorf("%s: no runs recorded", path)
	}
	return file.Runs[len(file.Runs)-1], nil
}
