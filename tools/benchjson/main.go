// Command benchjson converts `go test -bench` output into the repository's
// benchmark-trajectory file (BENCH_consensus.json by default). Each
// invocation appends one labelled run, so the file accumulates a history
// of measurements across PRs:
//
//	go test -run '^$' -bench . -benchmem -benchtime 10x . | \
//	    go run ./tools/benchjson -label "my change"
//
// The Makefile `bench` target wraps exactly that pipeline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one benchmark line.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// BenchRun is one labelled invocation of the suite.
type BenchRun struct {
	Label   string        `json:"label"`
	Date    string        `json:"date"`
	GoOS    string        `json:"goos"`
	GoArch  string        `json:"goarch"`
	CPU     string        `json:"cpu,omitempty"`
	Results []BenchResult `json:"results"`
}

// File is the trajectory file layout.
type File struct {
	Suite string     `json:"suite"`
	Note  string     `json:"note"`
	Runs  []BenchRun `json:"runs"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	label := flag.String("label", "", "label for this run (required)")
	out := flag.String("out", "BENCH_consensus.json", "trajectory file to append to")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}

	run := BenchRun{
		Label:  *label,
		Date:   time.Now().UTC().Format("2006-01-02"),
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			run.CPU = strings.TrimSpace(cpu)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		// Strip the -GOMAXPROCS suffix go test appends.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, _ := strconv.Atoi(m[2])
		ns, _ := strconv.ParseFloat(m[3], 64)
		res := BenchResult{Name: name, Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			res.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			res.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		run.Results = append(run.Results, res)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(run.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	file := File{
		Suite: "anonconsensus T1–T10/F1–F3 experiment suite + hot-path micro-benchmarks",
		Note:  "Append runs with `make bench` (or tools/benchjson); do not edit results by hand.",
	}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is unreadable: %v\n", *out, err)
			os.Exit(1)
		}
	}
	file.Runs = append(file.Runs, run)
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: appended %d results to %s (run %q)\n", len(run.Results), *out, *label)
}
