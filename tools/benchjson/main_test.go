package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrajectory(t *testing.T, dir, name string, runs ...BenchRun) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(File{Suite: "test", Runs: runs})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestParseBenchLine pins the result-line parser, including custom
// b.ReportMetric units, which go test prints interleaved with the
// standard columns in sorted-unit order.
func TestParseBenchLine(t *testing.T) {
	res, ok := parseBenchLine("BenchmarkServiceSimPooled1k-4   \t       2\t 503214021 ns/op\t     1987.4 decisions/sec\t 1234 B/op\t  56 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if res.Name != "ServiceSimPooled1k" || res.Iterations != 2 {
		t.Fatalf("name/iterations: %+v", res)
	}
	if res.NsPerOp != 503214021 || res.BytesPerOp != 1234 || res.AllocsPerOp != 56 {
		t.Fatalf("standard columns: %+v", res)
	}
	if got := res.Metrics["decisions_per_sec"]; got != 1987.4 {
		t.Fatalf("Metrics[decisions_per_sec] = %v, want 1987.4", got)
	}

	// Custom metrics may sort BEFORE ns/op ("MB/s" < "ns/op").
	res, ok = parseBenchLine("BenchmarkCodec-8   100\t 55.5 MB/s\t 1000 ns/op")
	if !ok || res.NsPerOp != 1000 || res.Metrics["MB_per_s"] != 55.5 {
		t.Fatalf("metric-before-ns line: ok=%v %+v", ok, res)
	}

	// Plain lines still parse, with no Metrics map allocated.
	res, ok = parseBenchLine("BenchmarkT1ESDecision-4   10\t 1380132 ns/op")
	if !ok || res.NsPerOp != 1380132 || res.Metrics != nil {
		t.Fatalf("plain line: ok=%v %+v", ok, res)
	}

	// Non-benchmark output is rejected.
	for _, line := range []string{"PASS", "ok  \tanonconsensus\t0.5s", "BenchmarkX 10 garbage"} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}

	// The workload benchmarks report latency percentiles as custom
	// metrics; all three must land in Metrics.
	res, ok = parseBenchLine("BenchmarkWorkloadLive-8   5\t 101234567 ns/op\t 21.50 p50_ms\t 33.10 p95_ms\t 41.00 p99_ms")
	if !ok {
		t.Fatal("percentile line not parsed")
	}
	for key, want := range map[string]float64{"p50_ms": 21.5, "p95_ms": 33.1, "p99_ms": 41} {
		if got := res.Metrics[key]; got != want {
			t.Errorf("Metrics[%s] = %v, want %v", key, got, want)
		}
	}
}

// TestCompareReportsMetricDeltas pins that compare mode surfaces custom
// metric movement (informational, never gated): a doubled p99 shows in
// the output but does not fail the gate.
func TestCompareReportsMetricDeltas(t *testing.T) {
	var b strings.Builder
	regressions, _, _ := compareRuns(&b,
		BenchRun{Results: []BenchResult{{Name: "WorkloadLive", NsPerOp: 100, Metrics: map[string]float64{"p99_ms": 20, "p50_ms": 5}}}},
		BenchRun{Results: []BenchResult{{Name: "WorkloadLive", NsPerOp: 100, Metrics: map[string]float64{"p99_ms": 40, "p50_ms": 5}}}}, 20)
	if regressions != 0 {
		t.Fatal("metric movement must not gate")
	}
	out := b.String()
	if !strings.Contains(out, "p99_ms") || !strings.Contains(out, "+100.0%") {
		t.Errorf("output missing p99 delta:\n%s", out)
	}
	if !strings.Contains(out, "not gated") {
		t.Errorf("metric lines must be marked not gated:\n%s", out)
	}
	// Keys print in stable (sorted) order: p50 before p99.
	if strings.Index(out, "p50_ms") > strings.Index(out, "p99_ms") {
		t.Errorf("metric lines not in stable order:\n%s", out)
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeTrajectory(t, dir, "old.json", BenchRun{Label: "base", Results: []BenchResult{
		{Name: "Fast", NsPerOp: 100},
		{Name: "Slow", NsPerOp: 1000},
	}})
	// Within threshold: +10% is fine at 20%.
	okNew := writeTrajectory(t, dir, "ok.json", BenchRun{Label: "next", Results: []BenchResult{
		{Name: "Fast", NsPerOp: 110},
		{Name: "Slow", NsPerOp: 900},
	}})
	if code := runCompare([]string{old, okNew, "-threshold", "20"}); code != 0 {
		t.Errorf("within-threshold compare exited %d, want 0", code)
	}
	// Beyond threshold: +50% on one benchmark must fail.
	badNew := writeTrajectory(t, dir, "bad.json", BenchRun{Label: "next", Results: []BenchResult{
		{Name: "Fast", NsPerOp: 150},
		{Name: "Slow", NsPerOp: 1000},
	}})
	if code := runCompare([]string{old, badNew, "-threshold", "20"}); code != 1 {
		t.Errorf("regressed compare exited %d, want 1", code)
	}
	// A looser threshold lets the same delta through.
	if code := runCompare([]string{old, badNew, "-threshold", "60"}); code != 0 {
		t.Errorf("loose-threshold compare exited %d, want 0", code)
	}
}

func TestCompareOnlyLastRunCounts(t *testing.T) {
	dir := t.TempDir()
	old := writeTrajectory(t, dir, "old.json",
		BenchRun{Label: "ancient", Results: []BenchResult{{Name: "X", NsPerOp: 1}}},
		BenchRun{Label: "base", Results: []BenchResult{{Name: "X", NsPerOp: 100}}},
	)
	next := writeTrajectory(t, dir, "new.json", BenchRun{Label: "next", Results: []BenchResult{{Name: "X", NsPerOp: 105}}})
	if code := runCompare([]string{old, next, "-threshold", "20"}); code != 0 {
		t.Errorf("compare against last run exited %d, want 0 (must not use the ancient run)", code)
	}
}

func TestCompareNewAndMissingBenchmarksAreNotFailures(t *testing.T) {
	dir := t.TempDir()
	old := writeTrajectory(t, dir, "old.json", BenchRun{Label: "base", Results: []BenchResult{
		{Name: "Gone", NsPerOp: 50},
		{Name: "Kept", NsPerOp: 100},
	}})
	next := writeTrajectory(t, dir, "new.json", BenchRun{Label: "next", Results: []BenchResult{
		{Name: "Kept", NsPerOp: 100},
		{Name: "Added", NsPerOp: 9999},
	}})
	if code := runCompare([]string{old, next}); code != 0 {
		t.Errorf("grown/shrunk suite exited %d, want 0", code)
	}
}

// TestCompareRunsRenameTolerance pins the gate's survival of a benchmark
// rename: the old name is reported as REMOVED, the new one as ADDED, and
// neither counts as a regression.
func TestCompareRunsRenameTolerance(t *testing.T) {
	oldRun := BenchRun{Label: "base", Results: []BenchResult{
		{Name: "Kept", NsPerOp: 1000},
		{Name: "OldName", NsPerOp: 500},
	}}
	newRun := BenchRun{Label: "next", Results: []BenchResult{
		{Name: "Kept", NsPerOp: 1050},
		{Name: "NewName", NsPerOp: 480},
	}}
	var b strings.Builder
	regressions, added, removed := compareRuns(&b, oldRun, newRun, 20)
	if regressions != 0 {
		t.Errorf("rename counted as %d regression(s)\n%s", regressions, b.String())
	}
	if added != 1 || removed != 1 {
		t.Errorf("added=%d removed=%d, want 1 and 1", added, removed)
	}
	out := b.String()
	if !strings.Contains(out, "NewName") || !strings.Contains(out, "ADDED") {
		t.Errorf("output missing ADDED report:\n%s", out)
	}
	if !strings.Contains(out, "OldName") || !strings.Contains(out, "REMOVED") {
		t.Errorf("output missing REMOVED report:\n%s", out)
	}
}

// TestCompareRunsZeroBaseline pins that a zero old ns/op is skipped rather
// than dividing by zero.
func TestCompareRunsZeroBaseline(t *testing.T) {
	var b strings.Builder
	regressions, _, _ := compareRuns(&b,
		BenchRun{Results: []BenchResult{{Name: "A", NsPerOp: 0}}},
		BenchRun{Results: []BenchResult{{Name: "A", NsPerOp: 100}}}, 20)
	if regressions != 0 {
		t.Error("zero baseline counted as regression")
	}
}

func TestCompareUsageErrors(t *testing.T) {
	dir := t.TempDir()
	old := writeTrajectory(t, dir, "old.json", BenchRun{Label: "base", Results: []BenchResult{{Name: "X", NsPerOp: 1}}})
	cases := [][]string{
		{},                       // no files
		{old},                    // one file
		{old, old, "-threshold"}, // dangling flag
		{old, old, "-threshold", "x"},
		{old, old, "-bogus"},
		{old, filepath.Join(dir, "absent.json")},
	}
	for _, args := range cases {
		if code := runCompare(args); code != 2 {
			t.Errorf("runCompare(%v) exited %d, want usage error 2", args, code)
		}
	}
	empty := writeTrajectory(t, dir, "empty.json")
	if code := runCompare([]string{old, empty}); code != 2 {
		t.Error("empty trajectory accepted")
	}
}
