// Package analysis is a dependency-free mirror of the subset of
// golang.org/x/tools/go/analysis that detlint's analyzers use.
//
// The build environment for this repository is hermetic: the Go module
// cache contains only the standard library, so the real x/tools module
// cannot be fetched. Rather than give up the vet-style analyzer shape,
// detlint vendors this minimal shim with the same field names and the
// same Run signature. If the x/tools dependency ever becomes available,
// each analyzer ports to the real multichecker by swapping this import
// for golang.org/x/tools/go/analysis and deleting nothing else.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static-analysis pass: a name for reporting
// and command-line selection, user-facing documentation, and the Run
// function executed once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then detail.
	Doc string

	// Run applies the analyzer to a single package. It reports findings
	// via pass.Report/Reportf and returns an optional result value
	// (unused by detlint's driver, kept for go/analysis parity).
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single type-checked package
// and a sink for its diagnostics.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver (or test harness)
	// installs it; analyzers must not assume anything about ordering of
	// delivery versus other analyzers.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
