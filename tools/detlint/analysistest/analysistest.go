// Package analysistest runs a detlint analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring the x/tools
// package of the same name.
//
// Fixtures live in GOPATH-style trees: testdata/src/<importPath>/*.go.
// The import path is declared by the directory layout, so a fixture can
// impersonate a deterministic package (testdata/src/anonconsensus/
// internal/sim) or an exempt live plane (…/internal/anonnet) and the
// analyzer's package classification behaves exactly as it would on the
// real tree. Expected findings are written on the offending line:
//
//	start := time.Now() // want `wall clock`
//
// Each backquoted string is a regexp that must match one diagnostic
// reported on that line; diagnostics with no matching want, and wants
// with no matching diagnostic, fail the test. A fixture with no want
// comments is a negative test: the analyzer must stay silent.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"anonconsensus/tools/detlint/analysis"
	"anonconsensus/tools/detlint/load"
)

var wantRE = regexp.MustCompile("`([^`]*)`")

// Run loads each import path from testdata/src and applies the analyzer,
// comparing diagnostics to the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	for _, path := range importPaths {
		t.Run(path, func(t *testing.T) {
			runOne(t, testdata, a, path)
		})
	}
}

type key struct {
	file string
	line int
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, importPath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(importPath))
	pkg, err := load.Dir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture does not type-check: %v", terr)
	}
	if t.Failed() {
		return
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	// Collect want expectations per (file, line).
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posString(pos), m[1], err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	// Match each diagnostic to an unconsumed want on its line.
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				wants[k][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posString(pos), d.Message)
		}
	}
	var unmet []string
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				unmet = append(unmet, fmt.Sprintf("%s:%d: no diagnostic matching `%s`", k.file, k.line, re))
			}
		}
	}
	sort.Strings(unmet)
	for _, msg := range unmet {
		t.Error(msg)
	}
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
