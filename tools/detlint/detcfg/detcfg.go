// Package detcfg is the single home of detlint's policy: which packages
// are bound by the determinism contract, which live planes are exempt,
// and how source code spells an explicit, reasoned escape hatch.
//
// # The determinism contract
//
// Fixed-seed runs in this repository must be byte-identical — the golden
// parity pins (TestParityGolden, the table/report parallelism pins)
// assume it. That only holds if deterministic packages never consult
// wall clocks, never draw from process-global randomness, never iterate
// maps where order can reach output, and never leak aliased mutable
// state or untracked goroutines. detlint enforces those rules at the
// AST level; this package decides where they apply.
//
// # Escape hatches
//
// Every rule has a directive comment that suppresses one finding, and
// every directive requires a reason — an empty reason is itself a lint
// error. The directive goes on the flagged line or the line directly
// above it:
//
//	//detlint:ordered aggregation is commutative — only the sum reaches output
//	for _, v := range m { total += v }
//
// Keywords: "ordered" (maporder), "wallclock" (wallclock), "globalrand"
// (globalrand), "aliased" (retalias), "goroutine" (goescape).
package detcfg

import (
	"go/ast"
	"go/token"
	"strings"
)

// deterministic names the package families (final path element under
// internal/) bound by the determinism contract. The root api package and
// cmd/ binaries orchestrate live transports and terminal output, so they
// stay outside; msemu, obstruction and register model inherently
// concurrent shared-memory objects whose tests embrace real scheduling.
var deterministic = map[string]bool{
	"sim":      true,
	"core":     true,
	"giraf":    true,
	"values":   true,
	"env":      true,
	"explore":  true,
	"expt":     true,
	"fd":       true,
	"weakset":  true,
	"wire":     true,
	"ordered":  true,
	"workload": true,
}

// liveExempt names the live network planes: real sockets and wall-clock
// latency profiles are their whole point, so the wallclock and goescape
// rules never apply there, even if a family is ever added to both lists.
var liveExempt = map[string]bool{
	"anonnet": true,
	"tcpnet":  true,
	// netchaos is the chaos-injection proxy for the live TCP plane: its
	// schedules fire on wall-clock timers relative to connection accept
	// times (that is the injection mechanism, not an accident), so the
	// wallclock and goescape rules cannot apply. Its *schedules* stay
	// deterministic — RandomSchedule draws from a seeded *rand.Rand, which
	// the globalrand rule still enforces here like everywhere under
	// internal/.
	"netchaos": true,
}

// family extracts the package family from an import path: the first
// path element after the last "internal" element. It returns "" for
// paths with no internal element.
func family(path string) string {
	segs := strings.Split(path, "/")
	for i := len(segs) - 1; i >= 0; i-- {
		if segs[i] == "internal" && i+1 < len(segs) {
			return segs[i+1]
		}
	}
	return ""
}

// Deterministic reports whether the package at path is bound by the
// determinism contract.
func Deterministic(path string) bool {
	return deterministic[family(path)] && !liveExempt[family(path)]
}

// LiveExempt reports whether the package at path is a live network
// plane, exempt from the wall-clock and goroutine rules by design.
func LiveExempt(path string) bool {
	return liveExempt[family(path)]
}

// Internal reports whether path lies under an internal/ element — the
// scope of the globalrand rule, which applies to every internal package,
// live planes included (seeded *rand.Rand is required even there, so
// latency schedules replay).
func Internal(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

// A Directive is one //detlint:<keyword> <reason> comment.
type Directive struct {
	Keyword string
	Reason  string
	Pos     token.Pos
}

// Exemptions indexes a package's detlint directives by file and line.
type Exemptions struct {
	fset   *token.FileSet
	byLine map[string]map[int][]Directive // filename → line → directives
}

// Collect scans the package's comments for detlint directives. It must
// be handed files parsed with parser.ParseComments.
func Collect(fset *token.FileSet, files []*ast.File) *Exemptions {
	e := &Exemptions{fset: fset, byLine: map[string]map[int][]Directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//detlint:")
				if !ok {
					continue
				}
				keyword, reason, _ := strings.Cut(text, " ")
				pos := fset.Position(c.Pos())
				lines := e.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]Directive{}
					e.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], Directive{
					Keyword: keyword,
					Reason:  strings.TrimSpace(reason),
					Pos:     c.Pos(),
				})
			}
		}
	}
	return e
}

// At returns the directive with the given keyword covering pos: on the
// same source line, or on the line immediately above (the usual spot for
// a full-line comment over a statement).
func (e *Exemptions) At(pos token.Pos, keyword string) (Directive, bool) {
	p := e.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range e.byLine[p.Filename][line] {
			if d.Keyword == keyword {
				return d, true
			}
		}
	}
	return Directive{}, false
}
