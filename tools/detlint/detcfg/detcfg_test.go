package detcfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestClassification(t *testing.T) {
	cases := []struct {
		path                    string
		det, live, internalPath bool
	}{
		{"anonconsensus/internal/sim", true, false, true},
		{"anonconsensus/internal/values", true, false, true},
		{"anonconsensus/internal/ordered", true, false, true},
		{"anonconsensus/internal/anonnet", false, true, true},
		{"anonconsensus/internal/tcpnet", false, true, true},
		{"anonconsensus/internal/netchaos", false, true, true},
		{"anonconsensus/internal/msemu", false, false, true},
		{"anonconsensus", false, false, false},
		{"anonconsensus/cmd/anonsim", false, false, false},
		{"anonconsensus/tools/detlint/load", false, false, false},
		// Classification is by the element after the last "internal", so
		// fixture paths impersonate real packages correctly.
		{"example.com/x/internal/sim", true, false, true},
	}
	for _, c := range cases {
		if got := Deterministic(c.path); got != c.det {
			t.Errorf("Deterministic(%q) = %v, want %v", c.path, got, c.det)
		}
		if got := LiveExempt(c.path); got != c.live {
			t.Errorf("LiveExempt(%q) = %v, want %v", c.path, got, c.live)
		}
		if got := Internal(c.path); got != c.internalPath {
			t.Errorf("Internal(%q) = %v, want %v", c.path, got, c.internalPath)
		}
	}
}

func TestDirectives(t *testing.T) {
	const src = `package p

func f(m map[int]int) int {
	n := 0
	//detlint:ordered sum is commutative
	for _, v := range m {
		n += v
	}
	//detlint:wallclock
	for _, v := range m {
		n -= v
	}
	return n // trailing comment, not a directive
}

//detlint:aliased doc-position directive
func g() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ex := Collect(fset, []*ast.File{f})

	lineStart := func(line int) token.Pos {
		return f.Pos() + token.Pos(lineOffset(src, line))
	}

	// Line 6 is the annotated range; the directive sits on line 5.
	if d, ok := ex.At(lineStart(6), "ordered"); !ok {
		t.Fatal("ordered directive on preceding line not found")
	} else if d.Reason != "sum is commutative" {
		t.Fatalf("reason = %q", d.Reason)
	}
	// Keyword mismatch: the wallclock directive must not satisfy an
	// "ordered" lookup on line 10.
	if _, ok := ex.At(lineStart(10), "ordered"); ok {
		t.Fatal("wallclock directive matched keyword ordered")
	}
	if d, ok := ex.At(lineStart(10), "wallclock"); !ok {
		t.Fatal("wallclock directive not found")
	} else if d.Reason != "" {
		t.Fatalf("reason = %q, want empty", d.Reason)
	}
	// Nothing covers line 13.
	if _, ok := ex.At(lineStart(13), "ordered"); ok {
		t.Fatal("unannotated line reported a directive")
	}
	// Doc-position directive covers the func g() line (16).
	if _, ok := ex.At(lineStart(17), "aliased"); !ok {
		t.Fatal("doc-position directive not found")
	}
}

// lineOffset returns the byte offset of the start of 1-based line.
func lineOffset(src string, line int) int {
	off := 0
	for l := 1; l < line; l++ {
		for off < len(src) && src[off] != '\n' {
			off++
		}
		off++ // the newline itself
	}
	return off
}
