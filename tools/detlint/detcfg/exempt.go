package detcfg

import (
	"go/token"

	"anonconsensus/tools/detlint/analysis"
)

// Suppressed reports whether a finding at pos is covered by a keyword
// directive. A directive with an empty reason suppresses the underlying
// finding too — so the run reports one actionable error, not two — but
// is flagged itself: the escape hatch is only valid with a reason on
// record.
func Suppressed(pass *analysis.Pass, ex *Exemptions, pos token.Pos, keyword string) bool {
	d, ok := ex.At(pos, keyword)
	if !ok {
		return false
	}
	if d.Reason == "" {
		// Report at the annotated code, not the comment: a bare //detlint:
		// line cannot host a // want assertion, and the finding should sit
		// where the fix (writing the reason) is decided anyway.
		pass.Reportf(pos, "detlint:%s directive requires a reason", keyword)
	}
	return true
}
