// Package globalrand forbids the process-global math/rand state in every
// internal package. Randomness must flow through an explicitly seeded,
// threaded *rand.Rand (the splitmix-mixed seeding discipline from the
// trial plane) so that every draw replays; rand.Intn and friends share
// one unseeded global generator whose stream depends on everything else
// in the process. Constructors (rand.New, rand.NewSource, …) stay legal
// — they are how the threaded discipline starts.
package globalrand

import (
	"go/ast"
	"go/types"

	"anonconsensus/tools/detlint/analysis"
	"anonconsensus/tools/detlint/detcfg"
)

// constructors are the math/rand and math/rand/v2 top-level functions
// that build explicit generators rather than touching global state.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func randPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid package-level math/rand functions in internal packages\n\n" +
		"The global generator is unseeded shared state; draws do not replay.\n" +
		"Thread a seeded *rand.Rand instead, or annotate\n" +
		"//detlint:globalrand <reason>.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !detcfg.Internal(pass.Pkg.Path()) {
		return nil, nil
	}
	ex := detcfg.Collect(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !randPkg(fn.Pkg().Path()) {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // method on *rand.Rand etc. — threaded state, fine
			}
			if constructors[fn.Name()] {
				return true
			}
			if detcfg.Suppressed(pass, ex, sel.Pos(), "globalrand") {
				return true
			}
			pass.Reportf(sel.Pos(), "global randomness: %s.%s draws from the process-global generator; thread a seeded *rand.Rand or annotate //detlint:globalrand <reason>",
				fn.Pkg().Path(), fn.Name())
			return true
		})
	}
	return nil, nil
}
