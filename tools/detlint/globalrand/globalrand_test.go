package globalrand_test

import (
	"testing"

	"anonconsensus/tools/detlint/analysistest"
	"anonconsensus/tools/detlint/globalrand"
)

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, "testdata", globalrand.Analyzer,
		"anonconsensus/internal/env", // internal: seeded violations
		"anonconsensus/tools/helper", // outside internal/: silent
	)
}
