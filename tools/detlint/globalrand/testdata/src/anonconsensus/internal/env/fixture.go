// Package envfix seeds globalrand violations inside an internal package
// path.
package envfix

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// Flagged: draws from the process-global generator.
func Draw(n int) int {
	return rand.Intn(n) // want `global randomness: math/rand.Intn`
}

func DrawV2() uint64 {
	return randv2.Uint64() // want `global randomness: math/rand/v2.Uint64`
}

func Reseed(seed int64) {
	rand.Seed(seed) // want `global randomness: math/rand.Seed`
}

// Not flagged: the threaded, seeded discipline — explicit generators and
// their methods.
func Threaded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Not flagged: an annotated draw with the reason on record.
func Jitter() float64 {
	//detlint:globalrand demo-only jitter, never reaches deterministic output
	return rand.Float64()
}

// A reasonless directive keeps the line suppressed but is itself an
// error.
func JitterBad() float64 {
	//detlint:globalrand
	return rand.Float64() // want `requires a reason`
}
