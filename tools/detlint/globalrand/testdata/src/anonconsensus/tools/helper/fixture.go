// Package helper is the negative fixture: globalrand's scope is
// internal/ packages, so a tools/ package may use the global generator
// (e.g. for throwaway jitter in a developer utility).
package helper

import "math/rand"

func Jitter() float64 {
	return rand.Float64()
}
