// Package goescape flags bare go statements in deterministic packages.
// In those packages concurrency is only legal through the sim.RunBatch
// worker pool, whose submission-order collection keeps output
// byte-identical at any parallelism; an ad-hoc goroutine reintroduces
// scheduler-ordered effects the pins cannot see. The pool's own
// implementation (and the expt trial fan-out built on the same
// discipline) carries //detlint:goroutine <reason> annotations.
package goescape

import (
	"go/ast"

	"anonconsensus/tools/detlint/analysis"
	"anonconsensus/tools/detlint/detcfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "goescape",
	Doc: "flag bare go statements in deterministic packages\n\n" +
		"Concurrency in deterministic packages must go through the\n" +
		"sim.RunBatch worker pool; annotate //detlint:goroutine <reason>\n" +
		"on pool-discipline implementations.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	path := pass.Pkg.Path()
	if !detcfg.Deterministic(path) || detcfg.LiveExempt(path) {
		return nil, nil
	}
	ex := detcfg.Collect(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if detcfg.Suppressed(pass, ex, gs.Go, "goroutine") {
				return true
			}
			pass.Reportf(gs.Go, "bare go statement in deterministic package %s: route concurrency through the sim.RunBatch pool or annotate //detlint:goroutine <reason>", path)
			return true
		})
	}
	return nil, nil
}
