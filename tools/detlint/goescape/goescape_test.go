package goescape_test

import (
	"testing"

	"anonconsensus/tools/detlint/analysistest"
	"anonconsensus/tools/detlint/goescape"
)

func TestGoEscape(t *testing.T) {
	analysistest.Run(t, "testdata", goescape.Analyzer,
		"anonconsensus/internal/sim",     // deterministic: seeded violations
		"anonconsensus/internal/anonnet", // live plane: exempt by config
	)
}
