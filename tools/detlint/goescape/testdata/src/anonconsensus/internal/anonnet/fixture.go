// Package anonnetfix is the negative fixture: the live planes run one
// goroutine per link by design, so goescape must stay silent.
package anonnetfix

func PerLink(links []func()) {
	for _, link := range links {
		go link()
	}
}
