// Package simfix seeds goescape violations inside a deterministic
// package path.
package simfix

// Flagged: an ad-hoc goroutine reintroduces scheduler order.
func FanOut(fns []func()) {
	for _, fn := range fns {
		go fn() // want `bare go statement`
	}
}

// Not flagged: pool-discipline code with the reason on record.
func Pool(work chan func()) {
	for i := 0; i < 4; i++ {
		//detlint:goroutine worker pool: submission-order collection keeps output parallelism-invariant
		go func() {
			for fn := range work {
				fn()
			}
		}()
	}
}

// A reasonless directive keeps the statement suppressed but is itself an
// error.
func PoolBad(fn func()) {
	//detlint:goroutine
	go fn() // want `requires a reason`
}
