// Package load turns Go package patterns (or bare fixture directories)
// into parsed, fully type-checked packages for detlint's analyzers.
//
// It is the hermetic stand-in for golang.org/x/tools/go/packages: type
// information comes from the go command's own export data (`go list
// -deps -export`), read back through the standard library's gc importer,
// so no module beyond the standard library is required and no network is
// touched.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// PkgPath is the package's import path. For fixture directories
	// loaded with Dir it is the caller-declared path, which is what
	// detlint's package classification matches against.
	PkgPath string

	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// TypeErrors holds type-checker errors. Analyzers still run over a
	// package with errors (its Info maps are partially filled), but the
	// driver reports them and fails the run.
	TypeErrors []error
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` over patterns and returns
// the decoded package stream.
func goList(patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Name,GoFiles,Export,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w", patterns, err)
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves import paths to types.Packages by reading the
// export data files `go list -export` produced.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return unsafeAware{gc}
}

// unsafeAware wraps the gc importer: package unsafe has no export data
// file, so it must short-circuit to types.Unsafe.
type unsafeAware struct{ next types.Importer }

func (u unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.next.Import(path)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// checkFiles parses files and type-checks them as package pkgPath using
// the given importer.
func checkFiles(fset *token.FileSet, pkgPath string, files []string, imp types.Importer) (*Package, error) {
	p := &Package{PkgPath: pkgPath, Fset: fset, TypesInfo: newInfo()}
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", f, err)
		}
		p.Files = append(p.Files, af)
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.Types, _ = conf.Check(pkgPath, fset, p.Files, p.TypesInfo)
	return p, nil
}

// Packages loads every non-standard-library package matched by patterns
// (test files excluded, testdata directories never matched), returning
// them sorted by import path.
func Packages(patterns ...string) ([]*Package, error) {
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listedPkg
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		p, err := checkFiles(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Dir loads a single fixture directory as the package importPath. Every
// .go file in dir is included (fixtures have no build tags or test
// files); imports must resolve within the standard library, which keeps
// fixtures loadable from inside testdata where the go command will not
// enumerate them. The declared importPath — not the directory — is what
// detlint's deterministic-package classification sees, so fixtures can
// impersonate any package the config covers.
func Dir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	// Resolve the fixtures' imports through export data for exactly the
	// standard-library packages they mention (plus dependencies).
	imports, err := importsOf(fset, files)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		listed, err := goList(imports)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	return checkFiles(fset, importPath, files, exportImporter(fset, exports))
}

// importsOf returns the sorted union of import paths across files.
func importsOf(fset *token.FileSet, files []string) ([]string, error) {
	seen := map[string]bool{}
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("parsing imports of %s: %w", f, err)
		}
		for _, im := range af.Imports {
			path, err := strconv.Unquote(im.Path.Value)
			if err != nil {
				return nil, err
			}
			seen[path] = true
		}
	}
	var out []string
	for p := range seen {
		if p != "unsafe" {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out, nil
}
