// Package maporder flags range statements over maps in deterministic
// packages. Go randomizes map iteration order on purpose; any map range
// whose effects can reach rendered output, wire bytes, or trace text
// breaks the byte-identity pins. Loops must iterate a sorted view
// instead, or carry //detlint:ordered <reason> when the body is
// genuinely order-insensitive.
package maporder

import (
	"go/ast"
	"go/types"

	"anonconsensus/tools/detlint/analysis"
	"anonconsensus/tools/detlint/detcfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range over maps in deterministic packages\n\n" +
		"Map iteration order is randomized; in packages bound by the\n" +
		"determinism contract a map range must iterate a sorted view or be\n" +
		"annotated //detlint:ordered <reason>.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !detcfg.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	ex := detcfg.Collect(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv := pass.TypesInfo.TypeOf(rs.X)
			if tv == nil {
				return true
			}
			if _, isMap := tv.Underlying().(*types.Map); !isMap {
				return true
			}
			// `for range m` binds neither key nor value: the body runs
			// len(m) times with no per-entry data, so order provably
			// cannot matter.
			if rs.Key == nil && rs.Value == nil {
				return true
			}
			if detcfg.Suppressed(pass, ex, rs.For, "ordered") {
				return true
			}
			pass.Reportf(rs.For, "range over map %s in deterministic package %s: iteration order is randomized; iterate a sorted view or annotate //detlint:ordered <reason>",
				types.TypeString(tv, types.RelativeTo(pass.Pkg)), pass.Pkg.Path())
			return true
		})
	}
	return nil, nil
}
