package maporder_test

import (
	"testing"

	"anonconsensus/tools/detlint/analysistest"
	"anonconsensus/tools/detlint/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer,
		"anonconsensus/internal/sim",     // deterministic: seeded violations
		"anonconsensus/internal/anonnet", // live plane: must stay silent
	)
}
