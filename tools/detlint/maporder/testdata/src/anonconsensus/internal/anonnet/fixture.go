// Package anonnetfix is the negative fixture: anonnet is a live network
// plane outside the determinism contract, so maporder must stay silent
// even over a bare map range.
package anonnetfix

func Render(m map[int]int) []int {
	var out []int
	for k, v := range m {
		out = append(out, k+v)
	}
	return out
}
