// Package simfix seeds maporder violations inside a package path the
// determinism config classifies as deterministic.
package simfix

type table map[int]string

// Flagged: per-entry data escapes in randomized order.
func Render(m map[int]int) []int {
	var out []int
	for k, v := range m { // want `range over map`
		out = append(out, k+v)
	}
	return out
}

// Flagged: named map types are maps too.
func RenderNamed(t table) []string {
	var out []string
	for _, v := range t { // want `range over map`
		out = append(out, v)
	}
	return out
}

// Not flagged: binding neither key nor value is provably
// order-insensitive.
func Count(m map[string]bool) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Not flagged: slices iterate in index order.
func Sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// Not flagged: the escape hatch carries a reason.
func Total(m map[int]int) int {
	n := 0
	//detlint:ordered integer addition is commutative, only the sum escapes
	for _, v := range m {
		n += v
	}
	return n
}

// A directive without a reason suppresses the range finding but is
// reported itself.
func TotalBad(m map[int]int) int {
	n := 0
	//detlint:ordered
	for _, v := range m { // want `requires a reason`
		n += v
	}
	return n
}
