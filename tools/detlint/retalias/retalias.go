// Package retalias flags exported functions and methods in deterministic
// packages that return a same-package struct field of slice or map type
// directly — the aliasing bug class behind the Result.Statuses fix: the
// caller receives a live reference into internal state, and a later
// mutation on either side silently corrupts the other. Return a copy, or
// annotate //detlint:aliased <reason> when sharing is the documented
// contract (e.g. an immutable cached canonical slice).
package retalias

import (
	"go/ast"
	"go/types"

	"anonconsensus/tools/detlint/analysis"
	"anonconsensus/tools/detlint/detcfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "retalias",
	Doc: "flag exported functions returning internal slice/map fields uncopied\n\n" +
		"Returning a struct field of slice or map type hands the caller a\n" +
		"live alias of internal state. Copy on return, or annotate\n" +
		"//detlint:aliased <reason> when sharing is the documented contract.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !detcfg.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	ex := detcfg.Collect(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkFunc(pass, ex, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, ex *detcfg.Exemptions, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		// Returns inside nested function literals escape through the
		// literal, not through the exported signature; skip them.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			checkResult(pass, ex, fd, res)
		}
		return true
	})
}

func checkResult(pass *analysis.Pass, ex *detcfg.Exemptions, fd *ast.FuncDecl, res ast.Expr) {
	sel, ok := ast.Unparen(res).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field := selection.Obj()
	if field.Pkg() != pass.Pkg {
		return // a foreign package's field is not our internal state
	}
	switch field.Type().Underlying().(type) {
	case *types.Slice, *types.Map:
	default:
		return
	}
	if detcfg.Suppressed(pass, ex, res.Pos(), "aliased") {
		return
	}
	pass.Reportf(res.Pos(), "aliased return: exported %s returns field %s.%s (%s) without copying; return a copy or annotate //detlint:aliased <reason>",
		fd.Name.Name, selection.Recv(), field.Name(),
		types.TypeString(field.Type(), types.RelativeTo(pass.Pkg)))
}
