package retalias_test

import (
	"testing"

	"anonconsensus/tools/detlint/analysistest"
	"anonconsensus/tools/detlint/retalias"
)

func TestRetAlias(t *testing.T) {
	analysistest.Run(t, "testdata", retalias.Analyzer,
		"anonconsensus/internal/giraf",  // deterministic: seeded violations
		"anonconsensus/internal/tcpnet", // live plane: outside the contract
	)
}
