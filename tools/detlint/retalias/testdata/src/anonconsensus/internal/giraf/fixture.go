// Package giraffix seeds retalias violations inside a deterministic
// package path.
package giraffix

type Result struct {
	statuses []int
	index    map[string]int
	Name     string
	count    int
}

// Flagged: the caller receives live aliases of internal state — the
// Result.Statuses bug class.
func (r *Result) Statuses() []int {
	return r.statuses // want `aliased return`
}

func (r *Result) Index() map[string]int {
	return r.index // want `aliased return`
}

// Flagged: plain functions leak the same way methods do.
func StatusesOf(r *Result) []int {
	return r.statuses // want `aliased return`
}

// Not flagged: copy on return.
func (r *Result) StatusesCopy() []int {
	return append([]int(nil), r.statuses...)
}

// Not flagged: scalar fields carry no aliasing.
func (r *Result) Count() int { return r.count }

// Not flagged: unexported functions are package-internal plumbing.
func statuses(r *Result) []int { return r.statuses }

// Not flagged: a return inside a function literal escapes through the
// literal, not the exported signature.
func (r *Result) Walker() func() []int {
	f := func() []int { return r.statuses }
	return f
}

// Not flagged: documented sharing with the reason on record.
//
//detlint:aliased read-only cached view; callers must not retain past the next mutation
func (r *Result) StatusesShared() []int { return r.statuses }

// A reasonless directive keeps the line suppressed but is itself an
// error.
func (r *Result) StatusesBad() []int {
	//detlint:aliased
	return r.statuses // want `requires a reason`
}
