// Package tcpnetfix is the negative fixture: tcpnet is a live plane
// outside the determinism contract, so retalias stays silent there.
package tcpnetfix

type Hub struct {
	conns []int
}

func (h *Hub) Conns() []int { return h.conns }
