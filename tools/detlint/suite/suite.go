// Package suite registers detlint's analyzers in the order the driver
// runs and reports them.
package suite

import (
	"anonconsensus/tools/detlint/analysis"
	"anonconsensus/tools/detlint/globalrand"
	"anonconsensus/tools/detlint/goescape"
	"anonconsensus/tools/detlint/maporder"
	"anonconsensus/tools/detlint/retalias"
	"anonconsensus/tools/detlint/wallclock"
)

// Analyzers returns the full determinism suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		wallclock.Analyzer,
		globalrand.Analyzer,
		retalias.Analyzer,
		goescape.Analyzer,
	}
}
