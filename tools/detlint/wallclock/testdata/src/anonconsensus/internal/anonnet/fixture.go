// Package anonnetfix is the negative fixture proving the live-plane
// exemption: anonnet schedules real latencies, so wall-clock reads are
// its job and wallclock must stay silent.
package anonnetfix

import "time"

func Deliver(d time.Duration) time.Time {
	timer := time.NewTimer(d)
	defer timer.Stop()
	time.Sleep(d / 2)
	<-timer.C
	return time.Now()
}
