// Package corefix seeds wallclock violations inside a deterministic
// package path.
package corefix

import "time"

// Flagged: reading and waiting on the wall clock.
func Measure() time.Duration {
	start := time.Now()      // want `wall clock: time.Now`
	return time.Since(start) // want `wall clock: time.Since`
}

func Wait(d time.Duration) {
	time.Sleep(d)   // want `wall clock: time.Sleep`
	<-time.After(d) // want `wall clock: time.After`
}

// Not flagged: duration arithmetic, constants and formatting never touch
// the clock.
func Format(d time.Duration) string {
	d = d.Round(time.Millisecond) + 2*time.Second
	return d.String()
}

// Not flagged: annotated measurement with a reason on record.
func Audited() time.Duration {
	//detlint:wallclock audited wall-time column, excluded from byte-identity pins
	start := time.Now()
	//detlint:wallclock paired read for the measurement above
	return time.Since(start)
}

// A reasonless directive keeps the line suppressed but is itself an
// error.
func AuditedBad() time.Time {
	//detlint:wallclock
	return time.Now() // want `requires a reason`
}
