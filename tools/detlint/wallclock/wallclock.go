// Package wallclock forbids reading or waiting on the wall clock in
// deterministic packages. Simulated time is the only clock those
// packages may consult — time.Now and friends make output depend on the
// host scheduler. The live network planes (anonnet, tcpnet) are exempt
// by config: real latency is their job.
package wallclock

import (
	"go/ast"
	"go/types"

	"anonconsensus/tools/detlint/analysis"
	"anonconsensus/tools/detlint/detcfg"
)

// forbidden lists the package time functions that read or wait on the
// wall clock. Duration arithmetic, formatting and constants stay legal.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock reads in deterministic packages\n\n" +
		"time.Now/Since/Until/Sleep/After/AfterFunc/Tick/NewTimer/NewTicker\n" +
		"couple output to the host scheduler. Deterministic packages use\n" +
		"simulated rounds; annotate //detlint:wallclock <reason> for the\n" +
		"rare legitimate measurement (e.g. a wall-time table column that is\n" +
		"excluded from the byte-identity pins).",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	path := pass.Pkg.Path()
	if !detcfg.Deterministic(path) || detcfg.LiveExempt(path) {
		return nil, nil
	}
	ex := detcfg.Collect(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !forbidden[fn.Name()] {
				return true
			}
			if detcfg.Suppressed(pass, ex, sel.Pos(), "wallclock") {
				return true
			}
			pass.Reportf(sel.Pos(), "wall clock: time.%s in deterministic package %s; use simulated time or annotate //detlint:wallclock <reason>",
				fn.Name(), path)
			return true
		})
	}
	return nil, nil
}
