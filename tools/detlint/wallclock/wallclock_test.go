package wallclock_test

import (
	"testing"

	"anonconsensus/tools/detlint/analysistest"
	"anonconsensus/tools/detlint/wallclock"
)

func TestWallClock(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer,
		"anonconsensus/internal/core",    // deterministic: seeded violations
		"anonconsensus/internal/anonnet", // live plane: exempt by config
	)
}
