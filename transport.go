package anonconsensus

import (
	"context"
	"fmt"
	"strings"
	"time"

	"anonconsensus/internal/env"
)

// InstanceSpec is one fully-described consensus instance, the unit of work
// a Transport executes. Node builds specs from proposals plus resolved
// options; zero-valued knobs mean "backend default" (Interval 5ms live /
// 10ms TCP, Timeout 30s, MaxRounds 10·n+200) so the compatibility wrappers
// reproduce the historical Config behavior exactly.
type InstanceSpec struct {
	// ID names the instance (unique within a Node session).
	ID string
	// Proposals holds one initial value per process.
	Proposals []Value
	// Env is the synchrony assumption (resolved: EnvES or EnvESS).
	Env Environment
	// GST is the stabilization round.
	GST int
	// StableSource is the eventual source (EnvESS only).
	StableSource int
	// Seed drives the pre-stabilization adversary.
	Seed int64
	// Crashes maps process index to its crash round. It always mirrors
	// Scenario.Crashes when the instance was built through the options API;
	// transports read this field, keeping it authoritative for legacy
	// Config-built specs too.
	Crashes map[int]int
	// Scenario is the composable fault overlay (loss, duplication,
	// partitions, crash schedule). The zero Scenario is fault-free.
	Scenario Scenario
	// Interval is the round-timer period (real-time transports).
	Interval time.Duration
	// Timeout bounds the run (real-time transports).
	Timeout time.Duration
	// MaxRounds bounds the run (sim transport).
	MaxRounds int
	// Reconnect governs connection-loss recovery (TCP transport only; the
	// zero policy means the backend default — reconnection on).
	Reconnect ReconnectPolicy
}

// N returns the number of processes.
func (s *InstanceSpec) N() int { return len(s.Proposals) }

// validate rejects malformed specs; transports may assume it passed. It
// also normalizes the crash schedule: the options API mirrors
// Scenario.Crashes into Crashes, but a hand-built spec may set only the
// scenario — such entries are merged into Crashes here (Crashes wins where
// both name a process) so every backend reads one authoritative schedule.
func (s *InstanceSpec) validate() error {
	if len(s.Proposals) == 0 {
		return fmt.Errorf("anonconsensus: no proposals")
	}
	if len(s.Scenario.Crashes) > 0 {
		merged := make(map[int]int, len(s.Crashes)+len(s.Scenario.Crashes))
		for pid, round := range s.Scenario.Crashes {
			merged[pid] = round
		}
		for pid, round := range s.Crashes {
			merged[pid] = round
		}
		s.Crashes = merged
	}
	for i, p := range s.Proposals {
		if !p.valid() {
			return fmt.Errorf("anonconsensus: proposal %d is invalid (%q)", i, string(p))
		}
	}
	switch s.Env {
	case EnvES, EnvESS:
	default:
		return fmt.Errorf("anonconsensus: unknown environment %d", int(s.Env))
	}
	if s.Env == EnvESS {
		if s.StableSource < 0 || s.StableSource >= len(s.Proposals) {
			return fmt.Errorf("anonconsensus: stable source %d outside [0,%d)", s.StableSource, len(s.Proposals))
		}
		if _, crashed := s.Crashes[s.StableSource]; crashed {
			return fmt.Errorf("anonconsensus: the stable source must stay correct")
		}
	}
	for pid, round := range s.Crashes {
		if pid < 0 || pid >= len(s.Proposals) {
			return fmt.Errorf("anonconsensus: crash schedule names process %d outside [0,%d)", pid, len(s.Proposals))
		}
		if round < 0 {
			return fmt.Errorf("anonconsensus: negative crash round %d for process %d", round, pid)
		}
	}
	// A schedule that crashes the whole ensemble cannot decide; fail fast
	// (ErrAllCrashed) instead of letting a real-time transport burn its
	// whole timeout on an outcome that is already known. Legacy round-0
	// entries do not count: on the real-time backends round 0 means
	// "never crashes", so such a spec can still decide there (the options
	// path cannot produce round 0 at all — WithCrashes requires ≥ 1).
	if len(s.Proposals) > 0 {
		crashing := 0
		for pid := range s.Proposals {
			if round, ok := s.Crashes[pid]; ok && round >= 1 {
				crashing++
			}
		}
		if crashing == len(s.Proposals) {
			return ErrAllCrashed
		}
	}
	// Only the scenario's link-fault dimensions are validated here (both
	// structure and ensemble fit): crash rounds were already checked
	// eagerly by WithCrashes/WithScenario on the options path, while the
	// legacy Config path deliberately keeps its historical contract (crash
	// round 0 = "never initializes" on the simulator), which the pid loop
	// above still admits.
	if faults := s.Scenario.linkFaults(s.Seed); faults != nil {
		if err := faults.Validate(len(s.Proposals)); err != nil {
			return fmt.Errorf("anonconsensus: %s", strings.TrimPrefix(err.Error(), "env: "))
		}
	}
	return nil
}

// linkFaults returns the internal per-link fault model for this spec's
// scenario (nil when the scenario has no loss, duplication or partitions),
// seeded with the spec seed.
func (s *InstanceSpec) linkFaults() *env.Scenario {
	return s.Scenario.linkFaults(s.Seed)
}

// interval returns the resolved round-timer period.
func (s *InstanceSpec) interval(def time.Duration) time.Duration {
	if s.Interval > 0 {
		return s.Interval
	}
	return def
}

// timeout returns the resolved run bound.
func (s *InstanceSpec) timeout() time.Duration {
	if s.Timeout > 0 {
		return s.Timeout
	}
	return 30 * time.Second
}

// Transport runs consensus instances over one backend. The built-in
// transports — NewLiveTransport (in-process goroutine network),
// NewSimTransport (deterministic lockstep simulator), NewTCPTransport
// (real TCP through an anonymous broadcast hub) and NewTCPMuxTransport
// (real TCP, instances multiplexed as epochs over persistent hub
// sessions) — share this interface, so a Node, a benchmark or a test can
// swap network realizations without touching driver code.
//
// Implementations must honor ctx: a cancelled context aborts the run
// promptly and Run returns an error wrapping ctx.Err().
type Transport interface {
	// Name identifies the backend ("live", "sim", "tcp", "tcp-mux").
	Name() string
	// Run executes one instance to completion and reports every process's
	// outcome. Instances are independent: transports must not leak state
	// (messages, rounds, decisions) between Run calls. Run must be safe
	// for concurrent use — a Node's worker pool (WithMaxInFlight) and
	// RunBatch issue overlapping calls on one transport.
	Run(ctx context.Context, spec InstanceSpec) (*Result, error)
	// Close releases backend resources. A closed transport rejects Run.
	Close() error
}
