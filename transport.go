package anonconsensus

import (
	"context"
	"fmt"
	"time"
)

// InstanceSpec is one fully-described consensus instance, the unit of work
// a Transport executes. Node builds specs from proposals plus resolved
// options; zero-valued knobs mean "backend default" (Interval 5ms live /
// 10ms TCP, Timeout 30s, MaxRounds 10·n+200) so the compatibility wrappers
// reproduce the historical Config behavior exactly.
type InstanceSpec struct {
	// ID names the instance (unique within a Node session).
	ID string
	// Proposals holds one initial value per process.
	Proposals []Value
	// Env is the synchrony assumption (resolved: EnvES or EnvESS).
	Env Environment
	// GST is the stabilization round.
	GST int
	// StableSource is the eventual source (EnvESS only).
	StableSource int
	// Seed drives the pre-stabilization adversary.
	Seed int64
	// Crashes maps process index to its crash round.
	Crashes map[int]int
	// Interval is the round-timer period (real-time transports).
	Interval time.Duration
	// Timeout bounds the run (real-time transports).
	Timeout time.Duration
	// MaxRounds bounds the run (sim transport).
	MaxRounds int
}

// N returns the number of processes.
func (s *InstanceSpec) N() int { return len(s.Proposals) }

// validate rejects malformed specs; transports may assume it passed.
func (s *InstanceSpec) validate() error {
	if len(s.Proposals) == 0 {
		return fmt.Errorf("anonconsensus: no proposals")
	}
	for i, p := range s.Proposals {
		if !p.valid() {
			return fmt.Errorf("anonconsensus: proposal %d is invalid (%q)", i, string(p))
		}
	}
	switch s.Env {
	case EnvES, EnvESS:
	default:
		return fmt.Errorf("anonconsensus: unknown environment %d", int(s.Env))
	}
	if s.Env == EnvESS {
		if s.StableSource < 0 || s.StableSource >= len(s.Proposals) {
			return fmt.Errorf("anonconsensus: stable source %d outside [0,%d)", s.StableSource, len(s.Proposals))
		}
		if _, crashed := s.Crashes[s.StableSource]; crashed {
			return fmt.Errorf("anonconsensus: the stable source must stay correct")
		}
	}
	for pid, round := range s.Crashes {
		if pid < 0 || pid >= len(s.Proposals) {
			return fmt.Errorf("anonconsensus: crash schedule names process %d outside [0,%d)", pid, len(s.Proposals))
		}
		if round < 0 {
			return fmt.Errorf("anonconsensus: negative crash round %d for process %d", round, pid)
		}
	}
	return nil
}

// interval returns the resolved round-timer period.
func (s *InstanceSpec) interval(def time.Duration) time.Duration {
	if s.Interval > 0 {
		return s.Interval
	}
	return def
}

// timeout returns the resolved run bound.
func (s *InstanceSpec) timeout() time.Duration {
	if s.Timeout > 0 {
		return s.Timeout
	}
	return 30 * time.Second
}

// Transport runs consensus instances over one backend. The three built-in
// transports — NewLiveTransport (in-process goroutine network),
// NewSimTransport (deterministic lockstep simulator) and NewTCPTransport
// (real TCP through an anonymous broadcast hub) — share this interface, so
// a Node, a benchmark or a test can swap network realizations without
// touching driver code.
//
// Implementations must honor ctx: a cancelled context aborts the run
// promptly and Run returns an error wrapping ctx.Err().
type Transport interface {
	// Name identifies the backend ("live", "sim", "tcp").
	Name() string
	// Run executes one instance to completion and reports every process's
	// outcome. Instances are independent: transports must not leak state
	// (messages, rounds, decisions) between Run calls.
	Run(ctx context.Context, spec InstanceSpec) (*Result, error)
	// Close releases backend resources. A closed transport rejects Run.
	Close() error
}
