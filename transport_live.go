package anonconsensus

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"anonconsensus/internal/anonnet"
)

// liveTransport adapts the in-process goroutine runtime (internal/anonnet)
// to the Transport interface.
type liveTransport struct {
	closed atomic.Bool
}

// NewLiveTransport returns the in-process real-time backend: one goroutine
// per anonymous process, channel broadcast with per-link latency profiles
// realizing ES and ESS physically (drifting local round timers).
func NewLiveTransport() Transport { return &liveTransport{} }

// Name implements Transport.
func (t *liveTransport) Name() string { return "live" }

// Close implements Transport.
func (t *liveTransport) Close() error {
	t.closed.Store(true)
	return nil
}

// Run implements Transport.
func (t *liveTransport) Run(ctx context.Context, spec InstanceSpec) (*Result, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("anonconsensus: live transport is closed")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	n := spec.N()
	interval := spec.interval(5 * time.Millisecond)
	var latency anonnet.LatencyModel
	if spec.Env == EnvESS {
		latency = anonnet.ESSProfile{N: n, Interval: interval, Seed: spec.Seed, GST: spec.GST, Source: spec.StableSource}
	} else {
		latency = anonnet.ESProfile{N: n, Interval: interval, Seed: spec.Seed, GST: spec.GST}
	}
	res, err := anonnet.Run(ctx, anonnet.Config{
		N:                n,
		Automaton:        automatonFactory(spec.Env, spec.Proposals),
		Interval:         interval,
		Latency:          latency,
		Timeout:          spec.timeout(),
		CrashAfterRounds: spec.Crashes,
		Scenario:         spec.linkFaults(),
	})
	if err != nil {
		return nil, err
	}
	out := &Result{Elapsed: res.Elapsed}
	for i, p := range res.Procs {
		out.Decisions = append(out.Decisions, Decision{
			Proc:    i,
			Decided: p.Decided,
			Value:   Value(p.Decision),
			Round:   p.DecidedRound,
			Crashed: p.Crashed,
		})
	}
	return out, nil
}
