package anonconsensus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"anonconsensus/internal/tcpnet"
)

// tcpMuxTransport adapts the multiplexed real-TCP runtime to the
// Transport interface: ONE shared anonymous broadcast hub and a
// persistent pool of resumable hub sessions (one TCP connection per
// process slot), with every Run riding those connections as a distinct
// instance epoch. Where the plain tcp transport pays a hub, n dials and
// n handshakes per instance, this one pays them once and then
// multiplexes — the serving-plane shape for sustained traffic.
type tcpMuxTransport struct {
	mu     sync.Mutex
	hub    *tcpnet.Hub
	slots  []*tcpnet.MuxNode
	epoch  uint64
	closed bool
}

// NewTCPMuxTransport returns the multiplexed real-TCP backend. Run is
// safe for concurrent use: each call claims a fresh epoch, registers it
// on the first n connection slots (growing the pool to the largest n
// seen), runs the instance's automata over the shared connections, and
// retires the epoch on the hub when done — so the hub's replay log stays
// proportional to the instances in flight, not to everything it ever
// carried.
//
// Differences from NewTCPTransport, both rooted in connection sharing:
// link-fault scenarios (loss, duplication, partitions) are rejected —
// the hub cannot fault one instance's forwards without faulting its
// co-tenants' — and GST adds no wall-clock jitter (runs are synchronous
// from the start, a legal ES/ESS execution). Crash schedules still
// apply; a slot that exhausts its reconnect budget counts as crashed for
// the epochs it carried, exactly like the plain transport's ErrHubLost
// handling.
func NewTCPMuxTransport() Transport { return &tcpMuxTransport{} }

// Name implements Transport.
func (t *tcpMuxTransport) Name() string { return "tcp-mux" }

// Close implements Transport.
func (t *tcpMuxTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	slots, hub := t.slots, t.hub
	t.slots, t.hub = nil, nil
	t.mu.Unlock()
	var firstErr error
	for _, m := range slots {
		if err := m.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if hub != nil {
		if err := hub.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// lease returns n persistent slots and a fresh epoch, starting the hub
// and growing the slot pool on first need.
func (t *tcpMuxTransport) lease(ctx context.Context, n int, interval time.Duration, seed int64) ([]*tcpnet.MuxNode, uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, 0, fmt.Errorf("anonconsensus: tcp-mux transport is closed")
	}
	if t.hub == nil {
		hub, err := tcpnet.NewHub("127.0.0.1:0")
		if err != nil {
			return nil, 0, err
		}
		t.hub = hub
	}
	for len(t.slots) < n {
		m, err := tcpnet.DialMux(ctx, tcpnet.MuxConfig{
			HubAddr:   t.hub.Addr(),
			Reconnect: resolveReconnect(ReconnectPolicy{}, interval, seed, len(t.slots)),
		})
		if err != nil {
			return nil, 0, fmt.Errorf("anonconsensus: tcp-mux slot %d: %w", len(t.slots), err)
		}
		t.slots = append(t.slots, m)
	}
	t.epoch++
	return t.slots[:n:n], t.epoch, nil
}

// Run implements Transport.
func (t *tcpMuxTransport) Run(ctx context.Context, spec InstanceSpec) (*Result, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if sc := spec.linkFaults(); sc != nil {
		return nil, fmt.Errorf("anonconsensus: the tcp-mux transport shares connections across instances and cannot inject per-instance link faults; use NewTCPTransport for loss/duplication/partition scenarios")
	}
	n := spec.N()
	interval := spec.interval(10 * time.Millisecond)
	start := time.Now()
	slots, epoch, err := t.lease(ctx, n, interval, spec.Seed)
	if err != nil {
		return nil, err
	}
	// Register the epoch on every slot before any automaton starts, so no
	// slot discards a sibling's first broadcast as unknown-epoch.
	for i, m := range slots {
		if err := m.Register(epoch); err != nil {
			for _, reg := range slots[:i] {
				reg.Unregister(epoch)
			}
			return nil, fmt.Errorf("anonconsensus: tcp-mux node %d: %w", i, err)
		}
	}
	hub := t.hubHandle()
	defer func() {
		for _, m := range slots {
			m.Unregister(epoch)
		}
		if hub != nil {
			hub.RetireEpoch(epoch)
		}
	}()

	factory := automatonFactory(spec.Env, spec.Proposals)
	results := make([]*tcpnet.NodeResult, n)
	errs := make([]error, n)
	// Same abort split as the plain tcp transport: infrastructure errors
	// abort the siblings, a slot that lost the hub for good (ErrHubLost)
	// is crash-equivalent and the siblings keep running.
	runCtx, abort := context.WithCancel(ctx)
	defer abort()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := slots[i].RunInstance(runCtx, epoch, tcpnet.InstanceRun{
				Automaton:        factory(i),
				Interval:         interval,
				Timeout:          spec.timeout(),
				CrashAfterRounds: spec.Crashes[i],
				Peers:            n,
			})
			if err != nil && errors.Is(err, tcpnet.ErrHubLost) && res != nil {
				results[i] = res
				return
			}
			results[i], errs[i] = res, err
			if err != nil {
				abort()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("anonconsensus: tcp-mux run cancelled: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("anonconsensus: tcp-mux node %d: %w", i, err)
		}
	}
	out := &Result{Elapsed: time.Since(start)}
	for i, r := range results {
		out.Decisions = append(out.Decisions, Decision{
			Proc:    i,
			Decided: r.Decided,
			Value:   Value(r.Decision),
			Round:   r.Round,
			Crashed: r.Crashed,
		})
	}
	// Robustness counters stay zero here by design: reconnects, replays
	// and heartbeats belong to the transport's persistent connections,
	// which outlive and span instances, so charging them to the one Run
	// that happened to observe them would misattribute. The hub's and
	// slots' cumulative counters remain available on their own handles.
	return out, nil
}

// hubHandle snapshots the shared hub under the lock (Close may nil it).
func (t *tcpMuxTransport) hubHandle() *tcpnet.Hub {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hub
}
