package anonconsensus

import (
	"context"
	"fmt"
	"sync/atomic"

	"anonconsensus/internal/core"
	"anonconsensus/internal/sim"
)

// simTransport adapts the deterministic lockstep simulator (internal/sim
// driven through internal/core) to the Transport interface.
type simTransport struct {
	closed atomic.Bool
}

// NewSimTransport returns the deterministic simulator backend: seeded
// adversarial schedules, lockstep rounds, identical specs produce
// identical Results. Interval and Timeout are ignored; MaxRounds bounds
// the run.
func NewSimTransport() Transport { return &simTransport{} }

// Name implements Transport.
func (t *simTransport) Name() string { return "sim" }

// Close implements Transport.
func (t *simTransport) Close() error {
	t.closed.Store(true)
	return nil
}

// Run implements Transport.
func (t *simTransport) Run(ctx context.Context, spec InstanceSpec) (*Result, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("anonconsensus: sim transport is closed")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	res, err := sim.RunContext(ctx, simConfig(spec))
	if err != nil {
		return nil, err
	}
	return simResult(res), nil
}

// simConfig translates a validated spec into the simulator configuration
// the sim transport runs: the policy (and automata) it builds belong to
// this one run.
func simConfig(spec InstanceSpec) sim.Config {
	var policy sim.Policy
	if spec.Env == EnvESS {
		policy = &sim.ESS{GST: spec.GST, StableSource: spec.StableSource, Pre: sim.MS{Seed: spec.Seed}}
	} else {
		policy = &sim.ES{GST: spec.GST, Pre: sim.MS{Seed: spec.Seed}}
	}
	opts := core.RunOpts{
		Policy:    policy,
		Crashes:   spec.Crashes,
		Scenario:  spec.linkFaults(),
		MaxRounds: spec.MaxRounds,
	}
	if spec.Env == EnvESS {
		return core.ConfigESS(toValues(spec.Proposals), opts)
	}
	return core.ConfigES(toValues(spec.Proposals), opts)
}

// simResult converts a simulator result into the public form.
func simResult(res *sim.Result) *Result {
	out := &Result{Rounds: res.Rounds}
	for i, st := range res.Statuses {
		out.Decisions = append(out.Decisions, Decision{
			Proc:    i,
			Decided: st.Decided,
			Value:   Value(st.Decision),
			Round:   st.DecidedAt,
			Crashed: st.Crashed,
		})
	}
	return out
}
