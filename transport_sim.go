package anonconsensus

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"anonconsensus/internal/core"
	"anonconsensus/internal/sim"
)

// simTransport adapts the deterministic lockstep simulator (internal/sim
// driven through internal/core) to the Transport interface. Concurrent
// Run calls recycle engines through a small free list: each Run acquires
// an idle engine (or allocates one) and Resets it to the spec, so k
// in-flight instances reuse k engines' arenas instead of allocating
// fresh simulator state per call. Reset is contractually identical to a
// fresh New, so pooling never reaches results — determinism stays fixed
// by the spec and seed alone.
type simTransport struct {
	closed atomic.Bool
	pool   bool

	mu   sync.Mutex
	free []*sim.Engine
}

// maxPooledEngines bounds the idle free list; concurrency beyond it
// still works, the excess engines are just not retained when released.
const maxPooledEngines = 32

// NewSimTransport returns the deterministic simulator backend: seeded
// adversarial schedules, lockstep rounds, identical specs produce
// identical Results. Interval and Timeout are ignored; MaxRounds bounds
// the run. Run is safe for concurrent use; overlapping runs recycle a
// per-transport engine pool.
func NewSimTransport() Transport { return &simTransport{pool: true} }

// newSimTransportUnpooled is the pre-pooling behavior — a fresh engine
// allocation per Run — kept as the benchmark baseline the engine pool is
// measured against.
func newSimTransportUnpooled() Transport { return &simTransport{} }

// Name implements Transport.
func (t *simTransport) Name() string { return "sim" }

// Close implements Transport.
func (t *simTransport) Close() error {
	t.closed.Store(true)
	t.mu.Lock()
	t.free = nil
	t.mu.Unlock()
	return nil
}

// acquire pops an idle engine, or returns nil when the caller should
// allocate a fresh one.
func (t *simTransport) acquire() *sim.Engine {
	if !t.pool {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.free); n > 0 {
		e := t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
		return e
	}
	return nil
}

// release returns an engine to the free list. Engines are reusable after
// any completed RunContext — including a context-cancelled one — because
// Reset rebuilds all run state (the same contract sim.RunBatch relies
// on).
func (t *simTransport) release(e *sim.Engine) {
	if !t.pool || e == nil {
		return
	}
	t.mu.Lock()
	if len(t.free) < maxPooledEngines && !t.closed.Load() {
		t.free = append(t.free, e)
	}
	t.mu.Unlock()
}

// Run implements Transport.
func (t *simTransport) Run(ctx context.Context, spec InstanceSpec) (*Result, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("anonconsensus: sim transport is closed")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	cfg := simConfig(spec)
	eng := t.acquire()
	var err error
	if eng == nil {
		eng, err = sim.New(cfg)
	} else if err = eng.Reset(cfg); err != nil {
		// A failed Reset leaves the engine unusable; drop it rather than
		// returning it to the pool.
		eng = nil
	}
	if err != nil {
		return nil, err
	}
	res, err := eng.RunContext(ctx)
	if err != nil {
		t.release(eng)
		return nil, err
	}
	// Convert before releasing: once the engine is back in the pool a
	// concurrent Run may Reset it.
	out := simResult(res)
	t.release(eng)
	return out, nil
}

// simConfig translates a validated spec into the simulator configuration
// the sim transport runs: the policy (and automata) it builds belong to
// this one run.
func simConfig(spec InstanceSpec) sim.Config {
	var policy sim.Policy
	if spec.Env == EnvESS {
		policy = &sim.ESS{GST: spec.GST, StableSource: spec.StableSource, Pre: sim.MS{Seed: spec.Seed}}
	} else {
		policy = &sim.ES{GST: spec.GST, Pre: sim.MS{Seed: spec.Seed}}
	}
	opts := core.RunOpts{
		Policy:    policy,
		Crashes:   spec.Crashes,
		Scenario:  spec.linkFaults(),
		MaxRounds: spec.MaxRounds,
	}
	if spec.Env == EnvESS {
		return core.ConfigESS(toValues(spec.Proposals), opts)
	}
	return core.ConfigES(toValues(spec.Proposals), opts)
}

// simResult converts a simulator result into the public form.
func simResult(res *sim.Result) *Result {
	out := &Result{Rounds: res.Rounds}
	for i, st := range res.Statuses {
		out.Decisions = append(out.Decisions, Decision{
			Proc:    i,
			Decided: st.Decided,
			Value:   Value(st.Decision),
			Round:   st.DecidedAt,
			Crashed: st.Crashed,
		})
	}
	return out
}
