package anonconsensus

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anonconsensus/internal/env"
	"anonconsensus/internal/tcpnet"
)

// tcpTransport adapts the real-TCP runtime (internal/tcpnet) to the
// Transport interface: every instance gets a fresh anonymous broadcast hub
// on the loopback interface and one TCP connection per process.
//
// A fresh hub per instance is load-bearing, not convenience: the hub
// replays its whole frame log to every connection and frames carry no
// instance tag, so reusing a hub would deliver instance k's envelopes into
// instance k+1.
type tcpTransport struct {
	listenAddr string
	closed     atomic.Bool
}

// NewTCPTransport returns the real-TCP backend: an anonymous broadcast hub
// is started per instance (loopback, ephemeral port) and every process
// runs as a TCP client node. GST and Seed shape a wall-clock analogue of
// the pre-stabilization chaos: until GST×Interval has elapsed, frame
// forwards are jittered by 1.5–3.5 round intervals; afterwards they are
// immediate, so both ES and ESS hold physically.
func NewTCPTransport() Transport { return &tcpTransport{listenAddr: "127.0.0.1:0"} }

// Name implements Transport.
func (t *tcpTransport) Name() string { return "tcp" }

// Close implements Transport.
func (t *tcpTransport) Close() error {
	t.closed.Store(true)
	return nil
}

// tcpJitter is a tiny stateless mixer (FNV-1a) for per-forward delays.
func tcpJitter(seed int64, conn, serial int) uint64 {
	h := uint64(1469598103934665603) ^ uint64(seed)
	for _, x := range [2]int{conn, serial} {
		h ^= uint64(uint32(x))
		h *= 1099511628211
	}
	h ^= h >> 33
	return h
}

// Run implements Transport.
func (t *tcpTransport) Run(ctx context.Context, spec InstanceSpec) (*Result, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("anonconsensus: tcp transport is closed")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	n := spec.N()
	interval := spec.interval(10 * time.Millisecond)
	start := time.Now()
	chaosUntil := start.Add(time.Duration(spec.GST) * interval)

	var serial atomic.Int64
	delay := func(connIndex int) time.Duration {
		if !time.Now().Before(chaosUntil) {
			return 0
		}
		j := tcpJitter(spec.Seed, connIndex, int(serial.Add(1)))
		return 3*interval/2 + time.Duration(j%2000)*interval/1000
	}
	hubOpts := []tcpnet.HubOption{tcpnet.WithForwardDelay(delay)}
	if sc := spec.linkFaults(); sc != nil {
		// The hub relays opaque frames and never learns rounds, so the
		// scenario is realized physically: partitions activate by wall
		// clock (round ≈ elapsed/interval, the same approximation the GST
		// chaos uses) and the loss/duplication draws hash the frame serial
		// instead of the round — per-forward faults that are deterministic
		// in the spec seed for a fixed frame order.
		draws := &env.Scenario{Seed: sc.Seed, LossPct: sc.LossPct, DupPct: sc.DupPct}
		hubOpts = append(hubOpts, tcpnet.WithForwardFault(func(from, to, frameSerial int) (bool, bool) {
			round := int(time.Since(start)/interval) + 1
			if sc.Partitioned(round, from, to) {
				return true, false
			}
			return draws.Drops(frameSerial, from, to), draws.Duplicates(frameSerial, from, to)
		}))
	}
	hub, err := tcpnet.NewHub(t.listenAddr, hubOpts...)
	if err != nil {
		return nil, err
	}
	defer hub.Close()

	factory := automatonFactory(spec.Env, spec.Proposals)
	results := make([]*tcpnet.NodeResult, n)
	errs := make([]error, n)
	// One node failing on infrastructure (lost hub connection, encode
	// error) aborts the siblings immediately instead of letting them run
	// out the full timeout.
	runCtx, abort := context.WithCancel(ctx)
	defer abort()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = tcpnet.RunNode(runCtx, tcpnet.NodeConfig{
				HubAddr:          hub.Addr(),
				Automaton:        factory(i),
				Interval:         interval,
				Timeout:          spec.timeout(),
				CrashAfterRounds: spec.Crashes[i],
			})
			if errs[i] != nil {
				abort()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("anonconsensus: tcp run cancelled: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("anonconsensus: tcp node %d: %w", i, err)
		}
	}
	out := &Result{Elapsed: time.Since(start)}
	for i, r := range results {
		out.Decisions = append(out.Decisions, Decision{
			Proc:    i,
			Decided: r.Decided,
			Value:   Value(r.Decision),
			Round:   r.Round,
			Crashed: r.Crashed,
		})
	}
	return out, nil
}

// TCPHub is the public handle on the anonymous broadcast relay, for
// deployments where processes are separate OS processes or machines (see
// cmd/anonnode). It relays frames verbatim with no origin information; all
// algorithmic work happens in the joined nodes.
type TCPHub struct {
	inner *tcpnet.Hub
}

// NewTCPHub starts a hub listening on addr (e.g. "127.0.0.1:7777" or
// ":0" for an ephemeral port).
func NewTCPHub(addr string) (*TCPHub, error) {
	h, err := tcpnet.NewHub(addr)
	if err != nil {
		return nil, err
	}
	return &TCPHub{inner: h}, nil
}

// Addr returns the hub's listen address.
func (h *TCPHub) Addr() string { return h.inner.Addr() }

// Close stops the hub and all its connections.
func (h *TCPHub) Close() error { return h.inner.Close() }

// JoinTCP joins the hub at hubAddr as one anonymous process proposing
// proposal, and blocks until that process decides, the run times out, or
// ctx is cancelled. The relevant options are WithEnv, WithInterval and
// WithTimeout; the returned Decision's Proc is always 0 (the process is
// anonymous — there is no meaningful index).
func JoinTCP(ctx context.Context, hubAddr string, proposal Value, opts ...Option) (Decision, error) {
	var o options
	if err := o.apply(opts); err != nil {
		return Decision{}, err
	}
	if err := o.validate(); err != nil {
		return Decision{}, err
	}
	if !proposal.valid() {
		return Decision{}, fmt.Errorf("anonconsensus: invalid proposal %q", string(proposal))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	factory := automatonFactory(o.resolvedEnv(), []Value{proposal})
	res, err := tcpnet.RunNode(ctx, tcpnet.NodeConfig{
		HubAddr:   hubAddr,
		Automaton: factory(0),
		Interval:  o.interval,
		Timeout:   o.timeout,
	})
	if err != nil {
		return Decision{}, err
	}
	if err := ctx.Err(); err != nil {
		return Decision{}, fmt.Errorf("anonconsensus: tcp join cancelled: %w", err)
	}
	return Decision{
		Decided: res.Decided,
		Value:   Value(res.Decision),
		Round:   res.Round,
		Crashed: res.Crashed,
	}, nil
}
