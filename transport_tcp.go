package anonconsensus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anonconsensus/internal/env"
	"anonconsensus/internal/tcpnet"
)

// tcpTransport adapts the real-TCP runtime (internal/tcpnet) to the
// Transport interface: every instance gets a fresh anonymous broadcast hub
// on the loopback interface and one TCP connection per process.
//
// A fresh hub per instance is load-bearing here: this transport's frames
// carry no instance tag, so reusing a hub would deliver instance k's
// envelopes into instance k+1. NewTCPMuxTransport is the multiplexed
// alternative — epoch-tagged frames, one shared hub, persistent
// connections — for sustained many-instance traffic.
type tcpTransport struct {
	listenAddr string
	closed     atomic.Bool

	// dialVia, when set, reroutes one node's hub dial — the seam the chaos
	// tests use to interpose a netchaos proxy on selected nodes. It
	// returns the address the node should dial and a cleanup run when the
	// instance finishes; returning hubAddr unchanged means "direct".
	dialVia func(node int, hubAddr string) (addr string, cleanup func())
}

// NewTCPTransport returns the real-TCP backend: an anonymous broadcast hub
// is started per instance (loopback, ephemeral port) and every process
// runs as a TCP client node. GST and Seed shape a wall-clock analogue of
// the pre-stabilization chaos: until GST×Interval has elapsed, frame
// forwards are jittered by 1.5–3.5 round intervals; afterwards they are
// immediate, so both ES and ESS hold physically.
func NewTCPTransport() Transport { return &tcpTransport{listenAddr: "127.0.0.1:0"} }

// Name implements Transport.
func (t *tcpTransport) Name() string { return "tcp" }

// Close implements Transport.
func (t *tcpTransport) Close() error {
	t.closed.Store(true)
	return nil
}

// tcpJitter is a tiny stateless mixer (FNV-1a) for per-forward delays.
func tcpJitter(seed int64, conn, serial int) uint64 {
	h := uint64(1469598103934665603) ^ uint64(seed)
	for _, x := range [2]int{conn, serial} {
		h ^= uint64(uint32(x))
		h *= 1099511628211
	}
	h ^= h >> 33
	return h
}

// Run implements Transport.
func (t *tcpTransport) Run(ctx context.Context, spec InstanceSpec) (*Result, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("anonconsensus: tcp transport is closed")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	n := spec.N()
	interval := spec.interval(10 * time.Millisecond)
	start := time.Now()
	chaosUntil := start.Add(time.Duration(spec.GST) * interval)

	var serial atomic.Int64
	delay := func(connIndex int) time.Duration {
		if !time.Now().Before(chaosUntil) {
			return 0
		}
		j := tcpJitter(spec.Seed, connIndex, int(serial.Add(1)))
		return 3*interval/2 + time.Duration(j%2000)*interval/1000
	}
	hubOpts := []tcpnet.HubOption{tcpnet.WithForwardDelay(delay)}
	if sc := spec.linkFaults(); sc != nil {
		// The hub relays opaque frames and never learns rounds, so the
		// scenario is realized physically: partitions activate by wall
		// clock (round ≈ elapsed/interval, the same approximation the GST
		// chaos uses) and the loss/duplication draws hash the frame serial
		// instead of the round — per-forward faults that are deterministic
		// in the spec seed for a fixed frame order.
		draws := &env.Scenario{Seed: sc.Seed, LossPct: sc.LossPct, DupPct: sc.DupPct}
		hubOpts = append(hubOpts, tcpnet.WithForwardFault(func(from, to, frameSerial int) (bool, bool) {
			round := int(time.Since(start)/interval) + 1
			if sc.Partitioned(round, from, to) {
				return true, false
			}
			return draws.Drops(frameSerial, from, to), draws.Duplicates(frameSerial, from, to)
		}))
	}
	hub, err := tcpnet.NewHub(t.listenAddr, hubOpts...)
	if err != nil {
		return nil, err
	}
	defer hub.Close()

	factory := automatonFactory(spec.Env, spec.Proposals)
	results := make([]*tcpnet.NodeResult, n)
	errs := make([]error, n)
	// A node failing on real infrastructure (encode error, dial failure at
	// start) aborts the siblings immediately instead of letting them run
	// out the full timeout. A node that established its session and then
	// lost the hub for good (ErrHubLost, after the reconnect path was
	// exhausted) is different: in the crash-fault model it is
	// indistinguishable from a crashed process, so the siblings keep
	// running — the severed minority is charged against the crash budget
	// the algorithms already tolerate.
	runCtx, abort := context.WithCancel(ctx)
	defer abort()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		nodeAddr := hub.Addr()
		if t.dialVia != nil {
			addr, cleanup := t.dialVia(i, nodeAddr)
			nodeAddr = addr
			if cleanup != nil {
				defer cleanup()
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := tcpnet.RunNode(runCtx, tcpnet.NodeConfig{
				HubAddr:          nodeAddr,
				Automaton:        factory(i),
				Interval:         interval,
				Timeout:          spec.timeout(),
				CrashAfterRounds: spec.Crashes[i],
				Reconnect:        resolveReconnect(spec.Reconnect, interval, spec.Seed, i),
			})
			if err != nil && errors.Is(err, tcpnet.ErrHubLost) && res != nil {
				// Crash-equivalent: keep the partial result (its counters
				// record the outage) and let the siblings finish.
				results[i] = res
				return
			}
			results[i], errs[i] = res, err
			if err != nil {
				abort()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("anonconsensus: tcp run cancelled: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("anonconsensus: tcp node %d: %w", i, err)
		}
	}
	out := &Result{Elapsed: time.Since(start)}
	for i, r := range results {
		out.Decisions = append(out.Decisions, Decision{
			Proc:    i,
			Decided: r.Decided,
			Value:   Value(r.Decision),
			Round:   r.Round,
			Crashed: r.Crashed,
		})
		out.Robustness.Reconnects += r.Reconnects
		out.Robustness.ReplayedFrames += r.ReplayedFrames
		out.Robustness.FailedDials += r.FailedDials
	}
	hs := hub.Stats()
	out.Robustness.HeartbeatMisses = hs.HeartbeatMisses
	out.Robustness.DroppedConns = hs.DroppedConns
	out.Robustness.OverwhelmedDrops = hs.OverwhelmedDrops
	return out, nil
}

// resolveReconnect turns the public policy into the tcpnet one: defaults
// filled in, jitter seeded from the run seed and the process index so
// each node's backoff schedule is distinct yet replayable.
func resolveReconnect(p ReconnectPolicy, interval time.Duration, seed int64, node int) tcpnet.ReconnectPolicy {
	if p.MaxAttempts < 0 {
		return tcpnet.ReconnectPolicy{} // reconnection disabled: fail fast
	}
	attempts := p.MaxAttempts
	if attempts == 0 {
		attempts = 5
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 2 * interval
		if base < 20*time.Millisecond {
			base = 20 * time.Millisecond
		}
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = time.Second
	}
	return tcpnet.ReconnectPolicy{
		MaxAttempts: attempts,
		BaseDelay:   base,
		MaxDelay:    maxd,
		Seed:        int64(tcpJitter(seed, node, 0x5eed)),
	}
}

// TCPHub is the public handle on the anonymous broadcast relay, for
// deployments where processes are separate OS processes or machines (see
// cmd/anonnode). It relays frames verbatim with no origin information; all
// algorithmic work happens in the joined nodes.
type TCPHub struct {
	inner *tcpnet.Hub
}

// NewTCPHub starts a hub listening on addr (e.g. "127.0.0.1:7777" or
// ":0" for an ephemeral port).
func NewTCPHub(addr string) (*TCPHub, error) {
	h, err := tcpnet.NewHub(addr)
	if err != nil {
		return nil, err
	}
	return &TCPHub{inner: h}, nil
}

// Addr returns the hub's listen address.
func (h *TCPHub) Addr() string { return h.inner.Addr() }

// Close stops the hub and all its connections.
func (h *TCPHub) Close() error { return h.inner.Close() }

// HubStats is the hub's robustness counters (sessions, resumptions,
// heartbeat misses, dropped connections).
type HubStats = tcpnet.HubStats

// Stats snapshots the hub's robustness counters.
func (h *TCPHub) Stats() HubStats { return h.inner.Stats() }

// JoinTCP joins the hub at hubAddr as one anonymous process proposing
// proposal, and blocks until that process decides, the run times out, or
// ctx is cancelled. The relevant options are WithEnv, WithInterval and
// WithTimeout; the returned Decision's Proc is always 0 (the process is
// anonymous — there is no meaningful index).
func JoinTCP(ctx context.Context, hubAddr string, proposal Value, opts ...Option) (Decision, error) {
	var o options
	if err := o.apply(opts); err != nil {
		return Decision{}, err
	}
	if err := o.validate(); err != nil {
		return Decision{}, err
	}
	if !proposal.valid() {
		return Decision{}, fmt.Errorf("anonconsensus: invalid proposal %q", string(proposal))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	interval := o.interval
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	factory := automatonFactory(o.resolvedEnv(), []Value{proposal})
	res, err := tcpnet.RunNode(ctx, tcpnet.NodeConfig{
		HubAddr:   hubAddr,
		Automaton: factory(0),
		Interval:  o.interval,
		Timeout:   o.timeout,
		Reconnect: resolveReconnect(o.reconnect, interval, o.seed, 0),
	})
	if err != nil {
		return Decision{}, err
	}
	if err := ctx.Err(); err != nil {
		return Decision{}, fmt.Errorf("anonconsensus: tcp join cancelled: %w", err)
	}
	return Decision{
		Decided: res.Decided,
		Value:   Value(res.Decision),
		Round:   res.Round,
		Crashed: res.Crashed,
	}, nil
}
