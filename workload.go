package anonconsensus

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"anonconsensus/internal/env"
	"anonconsensus/internal/workload"
)

// ArrivalProcess selects the inter-arrival distribution of the open-loop
// workload generator. All three are normalized to WorkloadSpec.Rate
// proposals per second on average; they differ in burstiness (Gamma and
// Weibull with shape < 1 are burstier than Poisson, > 1 smoother).
type ArrivalProcess int

// Supported arrival processes.
const (
	// PoissonArrivals: exponential inter-arrival times, the classic
	// memoryless open-loop load. The default.
	PoissonArrivals ArrivalProcess = iota + 1
	// GammaArrivals: Gamma inter-arrival times with WorkloadSpec.Shape.
	GammaArrivals
	// WeibullArrivals: Weibull inter-arrival times with WorkloadSpec.Shape.
	WeibullArrivals
)

// WorkloadClass is one client population of the mix: every generated
// proposal belongs to exactly one class, drawn with probability
// proportional to Weight, and runs that class's consensus configuration.
type WorkloadClass struct {
	// Name labels the class in traces and reports (non-empty,
	// [A-Za-z0-9_-] only).
	Name string
	// Weight is the class's relative share of the traffic (≥ 1).
	Weight int
	// Env is the synchrony environment (EnvES or EnvESS, default EnvES);
	// it selects the algorithm the class's instances run.
	Env Environment
	// N is the ensemble size (anonymous processes per instance).
	N int
	// GST is the stabilization round.
	GST int
	// StableSource is the eventual source (EnvESS only).
	StableSource int
	// Scenario overlays a fault scenario on every instance of the class;
	// each proposal draws its own fault pattern from its per-op seed. The
	// zero Scenario is fault-free.
	Scenario Scenario
	// MaxRounds bounds each instance (0 = backend default).
	MaxRounds int
}

// WorkloadSpec describes one open-loop workload: the arrival process, the
// client mix, and — for SimulateWorkload — the virtual service plane the
// arrivals queue into. Seed, Ops, Rate and Classes are required; the zero
// value of every other knob selects a default.
type WorkloadSpec struct {
	// Seed fixes everything the generator draws: arrival times, class
	// picks, and every instance's adversary seed.
	Seed int64
	// Ops is the number of proposals to generate.
	Ops int
	// Rate is the mean arrival rate in proposals per second. Open-loop
	// means arrivals keep coming at this rate no matter how the service
	// plane is doing — the load does not slow down because the server is
	// struggling, which is exactly how overload happens in production.
	Rate float64
	// Arrival is the inter-arrival process (default PoissonArrivals);
	// Shape parameterizes Gamma/Weibull (default 2).
	Arrival ArrivalProcess
	Shape   float64
	// Classes is the client mix (at least one).
	Classes []WorkloadClass

	// Servers, QueueDepth, AdmitRate and AdmitBurst describe the virtual
	// service plane SimulateWorkload queues arrivals into — the analogues
	// of WithMaxInFlight, WithQueueDepth and WithAdmission. RunWorkload
	// ignores them: a live Node brings its own configuration.
	Servers    int
	QueueDepth int
	AdmitRate  float64
	AdmitBurst int
	// RoundMicros is the virtual cost of one simulated consensus round in
	// microseconds (default 5000, the live plane's default round
	// interval). SimulateWorkload only.
	RoundMicros int64
	// Parallelism bounds the worker pool SimulateWorkload fans the
	// per-proposal simulator runs across (0 = GOMAXPROCS). It trades
	// wall-clock for cores, never output: results are byte-identical at
	// any setting.
	Parallelism int
}

// internal converts the public spec to the workload plane's form.
func (s WorkloadSpec) internal() (workload.Spec, error) {
	out := workload.Spec{
		Seed: s.Seed, Ops: s.Ops, Rate: s.Rate, Shape: s.Shape,
		Servers: s.Servers, QueueDepth: s.QueueDepth,
		AdmitRate: s.AdmitRate, AdmitBurst: s.AdmitBurst,
		RoundUS: s.RoundMicros, Parallelism: s.Parallelism,
	}
	switch s.Arrival {
	case 0:
	case PoissonArrivals:
		out.Arrival = workload.Poisson
	case GammaArrivals:
		out.Arrival = workload.Gamma
	case WeibullArrivals:
		out.Arrival = workload.Weibull
	default:
		return workload.Spec{}, fmt.Errorf("anonconsensus: unknown arrival process %d", int(s.Arrival))
	}
	for _, c := range s.Classes {
		ic := workload.Class{
			Name: c.Name, Weight: c.Weight, N: c.N, GST: c.GST,
			StableSource: c.StableSource, MaxRounds: c.MaxRounds,
		}
		switch c.Env {
		case EnvES, 0:
			ic.Alg = workload.ES
		case EnvESS:
			ic.Alg = workload.ESS
		default:
			return workload.Spec{}, fmt.Errorf("anonconsensus: class %q: unknown environment %d", c.Name, int(c.Env))
		}
		// The class scenario is a template: its seed is overridden per
		// proposal, so the zero seed here never reaches an instance.
		if sc := c.Scenario.toEnv(0); !sc.Empty() {
			ic.Scenario = sc
		}
		out.Classes = append(out.Classes, ic)
	}
	return out, nil
}

// WorkloadResult is one executed (or replayed) workload: every proposal's
// admission outcome and decision latency, with the report and the
// canonical replayable trace derived from it.
type WorkloadResult struct {
	inner *workload.Result
}

// EncodeTrace renders the result in the canonical trace form — one header
// line, one line per class, one line per proposal. The form is a fixed
// point of encode/parse, and ReplayWorkload re-executes it
// deterministically.
func (r *WorkloadResult) EncodeTrace() string { return r.inner.EncodeTrace() }

// WriteReport renders the SLO table: per-class and total p50/p95/p99
// decision latency, throughput, shed rate, and Jain's fairness index over
// weight-normalized completions.
func (r *WorkloadResult) WriteReport(w io.Writer) error { return r.inner.Report().Render(w) }

// WorkloadSummary is the run-level slice of the report, for callers that
// want numbers rather than a rendered table.
type WorkloadSummary struct {
	// Ops counts all generated proposals; Done the ones served to
	// completion; Shed the ones turned away (admission bucket or full
	// queue); Errored the accepted ones whose run failed.
	Ops, Done, Shed, Errored int
	// P50, P95, P99 are decision-latency percentiles over the served
	// proposals; MeanWait the mean time served proposals spent queued.
	P50, P95, P99, MeanWait time.Duration
	// Throughput is served proposals per second over the makespan.
	Throughput float64
	// ShedPct is the percentage of proposals shed.
	ShedPct float64
	// Fairness is Jain's index over the classes' weight-normalized
	// completions (1 = every class got exactly its configured share).
	Fairness float64
	// Makespan is the instant the last served proposal completed.
	Makespan time.Duration
}

// Summary extracts the run-level numbers from the report.
func (r *WorkloadResult) Summary() WorkloadSummary {
	rep := r.inner.Report()
	tot := rep.Total
	return WorkloadSummary{
		Ops: tot.Ops, Done: tot.Done,
		Shed:       tot.ShedAdmission + tot.ShedQueue,
		Errored:    tot.Errored,
		P50:        time.Duration(tot.P50US) * time.Microsecond,
		P95:        time.Duration(tot.P95US) * time.Microsecond,
		P99:        time.Duration(tot.P99US) * time.Microsecond,
		MeanWait:   time.Duration(tot.MeanWaitUS) * time.Microsecond,
		Throughput: tot.Throughput,
		ShedPct: func() float64 {
			if tot.Ops == 0 {
				return 0
			}
			return 100 * float64(tot.ShedAdmission+tot.ShedQueue) / float64(tot.Ops)
		}(),
		Fairness: rep.Fairness,
		Makespan: time.Duration(rep.MakespanUS) * time.Microsecond,
	}
}

// SimulateWorkload executes the workload on the deterministic virtual
// plane: seeded arrivals, every proposal's consensus instance run on the
// simulator, and the service plane (Servers, QueueDepth, admission)
// modelled in virtual time. The result — trace and report — is a pure
// function of the spec, byte-identical at any Parallelism.
func SimulateWorkload(ctx context.Context, spec WorkloadSpec) (*WorkloadResult, error) {
	ispec, err := spec.internal()
	if err != nil {
		return nil, err
	}
	res, err := workload.Run(ctx, ispec)
	if err != nil {
		return nil, err
	}
	return &WorkloadResult{inner: res}, nil
}

// ReplayWorkload re-executes a canonical trace. A virtual-mode trace is
// re-run through the service model and every recorded outcome verified —
// a trace whose records contradict its own schedule is rejected. A
// live-mode trace holds wall-clock measurements; its report is recomputed
// from the records.
func ReplayWorkload(trace string) (*WorkloadResult, error) {
	res, err := workload.Replay(trace)
	if err != nil {
		return nil, err
	}
	return &WorkloadResult{inner: res}, nil
}

// RunWorkload drives a running Node — any backend, including the TCP-mux
// service — with the spec's open-loop traffic and measures real decision
// latencies. The arrival schedule and per-proposal seeds are the same
// ones SimulateWorkload uses (the generator is deterministic), but the
// measurements are wall-clock, so the resulting live-mode trace records
// what actually happened rather than a replayable model.
//
// Each arrival is proposed at its scheduled instant regardless of how the
// node is coping (open loop); a Propose shed with ErrOverloaded is
// recorded as shed-admit (the node does not report which stage — bucket
// or queue — shed it), any other failure as err. If ctx is cancelled the
// remaining unissued proposals are recorded as err and the partial result
// returned.
func RunWorkload(ctx context.Context, node *Node, spec WorkloadSpec) (*WorkloadResult, error) {
	if node == nil {
		return nil, fmt.Errorf("anonconsensus: RunWorkload: nil node")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ispec, err := spec.internal()
	if err != nil {
		return nil, err
	}
	arrivals, err := workload.Generate(ispec)
	if err != nil {
		return nil, err
	}
	records := make([]workload.Record, len(arrivals))
	for i, a := range arrivals {
		records[i].Arrival = a
	}
	var wg sync.WaitGroup
	start := time.Now()
	for i := range arrivals {
		if d := time.Duration(arrivals[i].TimeUS)*time.Microsecond - time.Since(start); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				for j := i; j < len(records); j++ {
					records[j].Outcome = workload.Errored
				}
				wg.Wait()
				return &WorkloadResult{inner: workload.LiveResult(ispec, records)}, nil
			case <-t.C:
			}
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runLiveOp(ctx, node, &ispec.Classes[arrivals[i].Class], &records[i], i)
		}(i)
	}
	wg.Wait()
	return &WorkloadResult{inner: workload.LiveResult(ispec, records)}, nil
}

// runLiveOp proposes one arrival to the node, waits for its outcome, and
// fills in its record (rec is this goroutine's own slot; its Arrival is
// already set).
func runLiveOp(ctx context.Context, node *Node, c *workload.Class, rec *workload.Record, i int) {
	opts := []Option{WithGST(c.GST), WithSeed(rec.Seed)}
	if c.Alg == workload.ESS {
		opts = append(opts, WithEnv(EnvESS), WithStableSource(c.StableSource))
	} else {
		opts = append(opts, WithEnv(EnvES))
	}
	if c.MaxRounds > 0 {
		opts = append(opts, WithMaxRounds(c.MaxRounds))
	}
	if !c.Scenario.Empty() {
		opts = append(opts, WithScenario(scenarioFromEnv(c.Scenario)))
	}
	proposals := make([]Value, c.N)
	for p := range proposals {
		proposals[p] = NumValue(int64(p))
	}
	id := fmt.Sprintf("wl%d-%d", i, rec.Seed)
	begin := time.Now()
	if err := node.Propose(ctx, id, proposals, opts...); err != nil {
		if errors.Is(err, ErrOverloaded) {
			rec.Outcome = workload.ShedAdmission
		} else {
			rec.Outcome = workload.Errored
		}
		return
	}
	res, err := node.Wait(ctx, id)
	lat := time.Since(begin).Microseconds()
	if err != nil {
		rec.Outcome = workload.Errored
		// The wait aborted but the instance may still be registered; reap
		// it in the background so cancelled workloads do not leak IDs
		// (mirrors Node.Run's ownership rule).
		go func() { _, _ = node.Wait(context.Background(), id) }()
		return
	}
	rec.Outcome = workload.OK
	// Wall-clock measurement cannot split queue wait from service; the
	// whole decision latency is recorded as service time.
	rec.SvcUS, rec.LatUS = lat, lat
	rec.Rounds = res.Rounds
	var agreedVal Value
	agreed := true
	for _, d := range res.Decisions {
		if !d.Decided {
			continue
		}
		if rec.DecidedProcs == 0 {
			agreedVal = d.Value
		} else if d.Value != agreedVal {
			agreed = false
		}
		rec.DecidedProcs++
		if d.Round > rec.Rounds {
			rec.Rounds = d.Round
		}
	}
	rec.Agreed = agreed && rec.DecidedProcs > 0
}

// scenarioFromEnv converts an internal scenario template back to the
// public form (the workload plane stores class scenarios internally).
func scenarioFromEnv(s *env.Scenario) Scenario {
	out := Scenario{LossPct: s.LossPct, DupPct: s.DupPct}
	if len(s.Crashes) > 0 {
		out.Crashes = make(map[int]int, len(s.Crashes))
		for pid, r := range s.Crashes {
			out.Crashes[pid] = r
		}
	}
	for _, p := range s.Partitions {
		out.Partitions = append(out.Partitions, Partition{From: p.From, Until: p.Until, Cut: p.Cut})
	}
	return out
}
