package anonconsensus

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func apiWorkloadSpec() WorkloadSpec {
	return WorkloadSpec{
		Seed: 11,
		Ops:  80,
		Rate: 500,
		Classes: []WorkloadClass{
			{Name: "bulk", Weight: 3, Env: EnvES, N: 4, GST: 2},
			{Name: "interactive", Weight: 1, Env: EnvESS, N: 3, GST: 2, StableSource: 0},
		},
		Servers:    4,
		QueueDepth: 8,
		AdmitRate:  400,
		AdmitBurst: 8,
	}
}

// TestSimulateWorkloadDeterministicAndReplayable pins the public virtual
// plane: identical specs produce byte-identical traces and reports, and
// the trace replays through the public API.
func TestSimulateWorkloadDeterministicAndReplayable(t *testing.T) {
	a, err := SimulateWorkload(context.Background(), apiWorkloadSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateWorkload(context.Background(), apiWorkloadSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.EncodeTrace() != b.EncodeTrace() {
		t.Fatal("identical specs produced different traces")
	}
	replayed, err := ReplayWorkload(a.EncodeTrace())
	if err != nil {
		t.Fatal(err)
	}
	if replayed.EncodeTrace() != a.EncodeTrace() {
		t.Fatal("replay did not reproduce the trace")
	}
	var buf bytes.Buffer
	if err := a.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"class", "p50ms", "p99ms", "fairness"} {
		if !strings.Contains(buf.String(), col) {
			t.Errorf("report missing %q:\n%s", col, buf.String())
		}
	}
	sum := a.Summary()
	if sum.Ops != 80 || sum.Done == 0 || sum.Done+sum.Shed+sum.Errored != sum.Ops {
		t.Fatalf("summary does not partition the ops: %+v", sum)
	}
	if sum.P99 < sum.P95 || sum.P95 < sum.P50 || sum.P50 <= 0 {
		t.Fatalf("implausible percentiles: %+v", sum)
	}
}

// TestRunWorkloadAgainstNode drives a real Node (sim backend service)
// open-loop and checks the live-mode result: every proposal recorded,
// measured latencies, and a trace that parses and replays as identity.
func TestRunWorkloadAgainstNode(t *testing.T) {
	node, err := NewNode(NewSimTransport(), WithMaxInFlight(4), WithQueueDepth(16))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	spec := apiWorkloadSpec()
	spec.Ops = 40
	spec.Rate = 4000 // ~10ms of schedule
	res, err := RunWorkload(context.Background(), node, spec)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	if sum.Ops != 40 || sum.Done == 0 {
		t.Fatalf("live run served nothing: %+v", sum)
	}
	if sum.Errored > 0 {
		t.Fatalf("unexpected errored proposals: %+v", sum)
	}
	trace := res.EncodeTrace()
	if !strings.Contains(trace, "mode=live") {
		t.Fatalf("live trace mis-labelled:\n%s", strings.SplitN(trace, "\n", 2)[0])
	}
	back, err := ReplayWorkload(trace)
	if err != nil {
		t.Fatal(err)
	}
	if back.EncodeTrace() != trace {
		t.Fatal("live trace did not round-trip")
	}
	// The same spec's virtual arrivals and the live run's arrivals are the
	// same schedule: op lines agree on t/class/seed.
	if s := node.Stats(); s.Admitted != int64(sum.Done) {
		t.Fatalf("node admitted %d, workload served %d", s.Admitted, sum.Done)
	}
}

// TestRunWorkloadShedsUnderAdmission pins the live shed path: a node with
// a starved token bucket records shed-admit outcomes, not errors.
func TestRunWorkloadShedsUnderAdmission(t *testing.T) {
	node, err := NewNode(NewSimTransport(), WithMaxInFlight(2), WithAdmission(1.0/3600, 5))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	spec := apiWorkloadSpec()
	spec.Ops = 30
	spec.Rate = 10000
	res, err := RunWorkload(context.Background(), node, spec)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	if sum.Done == 0 || sum.Shed == 0 {
		t.Fatalf("want both served and shed proposals, got %+v", sum)
	}
	if sum.Done > 5 {
		t.Fatalf("burst 5 bucket served %d", sum.Done)
	}
	if sum.Errored != 0 {
		t.Fatalf("sheds recorded as errors: %+v", sum)
	}
}

// TestRunWorkloadCancellation pins the cancelled-run contract: the
// remaining proposals are recorded as err and the partial result returns
// promptly.
func TestRunWorkloadCancellation(t *testing.T) {
	node, err := NewNode(NewSimTransport())
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	spec := apiWorkloadSpec()
	spec.Ops = 50
	spec.Rate = 10 // 5s of schedule — the cancel must cut it short
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := RunWorkload(ctx, node, spec)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("cancelled run did not stop early")
	}
	sum := res.Summary()
	if sum.Ops != 50 || sum.Errored == 0 {
		t.Fatalf("cancelled run did not record the unissued tail: %+v", sum)
	}
}

// TestWorkloadSpecConversionErrors pins the public validation surface.
func TestWorkloadSpecConversionErrors(t *testing.T) {
	spec := apiWorkloadSpec()
	spec.Arrival = ArrivalProcess(42)
	if _, err := SimulateWorkload(context.Background(), spec); err == nil {
		t.Error("unknown arrival process accepted")
	}
	spec = apiWorkloadSpec()
	spec.Classes[0].Env = Environment(9)
	if _, err := SimulateWorkload(context.Background(), spec); err == nil {
		t.Error("unknown class environment accepted")
	}
	spec = apiWorkloadSpec()
	spec.Ops = 0
	if _, err := SimulateWorkload(context.Background(), spec); err == nil {
		t.Error("zero ops accepted")
	}
	if _, err := RunWorkload(context.Background(), nil, apiWorkloadSpec()); err == nil {
		t.Error("nil node accepted")
	}
	if _, err := ReplayWorkload("not a trace"); err == nil {
		t.Error("garbage trace accepted")
	}
}
